// Cross-transaction group durability (DESIGN.md §15).
//
// Two opt-in commit modes ride on the per-Tx redo protocol of fa.go:
//
//   - CommitGroup keeps §4.2's synchronous guarantee (Commit returns ⇒
//     durable) but routes the three pfences and the psync through a
//     shared nvm.FenceCombiner, so concurrent committers whose stages
//     overlap share barriers instead of draining their own.
//   - CommitAsync decouples the guarantee: Commit persists the log and
//     write set (unfenced), enqueues the block and returns an epoch
//     ticket. A later drain — triggered by batch pressure, a conflicting
//     access, AwaitDurable or DrainDurable — commits the whole queue as
//     one epoch with a single fence set, then advances the durability
//     watermark past every ticket in the batch.
//
// The async epoch pipeline preserves two invariants the per-Tx protocol
// gives for free:
//
//   - Each block's log (entry count included) is durable before its
//     committed mark can be: the drain fences every queued block's
//     stage-1 write-backs before writing any mark.
//   - Epochs are serialized: epoch e is fully applied, retired and
//     psynced before epoch e+1's marks are written, so a crash leaves
//     committed logs from at most one epoch — every crash image recovers
//     to a prefix of the epoch order (plus an all-or-nothing subset of
//     the in-flight epoch), and the parallel replay of RecoverLogs keeps
//     its disjoint-write-set assumption.
//
// Within an epoch the queued blocks must also have disjoint write sets.
// The application's locking no longer guarantees that (an async Commit
// returns before the app releases its locks' protection window), so the
// manager tracks every queued block's originals and any transactional
// access to one of them — read or write — first drains the queue (see
// groupState.waitClear). Non-transactional readers are not blocked: they
// observe the pre-epoch state until the drain applies, the documented
// bounded staleness of async mode.
package fa

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/nvm"
	"repro/internal/obs"
)

// CommitMode selects the durability protocol for outermost commits.
type CommitMode int

const (
	// CommitPerTx is the default §4.2 protocol — every commit issues its
	// own barriers. It is the correctness oracle the group modes are
	// checked against (see group_test.go), same pattern as the serial
	// recovery oracle.
	CommitPerTx CommitMode = iota
	// CommitGroup shares barriers across concurrent committers via a
	// fence combiner; Commit still returns only once durable.
	CommitGroup
	// CommitAsync enqueues the commit and returns a ticket immediately;
	// durability is reached at the next epoch drain (AwaitDurable).
	CommitAsync
)

// GroupOptions configures SetGroupCommit.
type GroupOptions struct {
	Mode CommitMode
	// ManualDrain (async only) disables automatic batch-pressure drains;
	// the caller drives every epoch with DrainDurable/AwaitDurable. This
	// keeps a single-goroutine workload fully deterministic, which is
	// what the crashmc gridgroup workload needs.
	ManualDrain bool
	// BatchTarget (async only) is the queue length that triggers an
	// automatic drain; 0 means the default of 8 (bounded above by half
	// the log slots so enqueued blocks cannot exhaust the slot pool).
	BatchTarget int
}

const defaultBatchTarget = 8

// groupState is the per-mode coordination state, swapped atomically on
// the manager so the default per-Tx path pays one nil check.
type groupState struct {
	m    *Manager
	mode CommitMode

	// Sync mode: the shared barrier.
	combiner *nvm.FenceCombiner

	// Async mode.
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*Tx                 // enqueued commits, ticket order
	pending  map[core.Ref]struct{} // originals held by queued commits
	issued   uint64                // tickets handed out
	durable  uint64                // watermark: last ticket fully durable
	draining bool                  // an epoch drain is in flight
	manual   bool
	target   int

	// Delta ledger (delta.go): pending net deltas folded by AddDelta,
	// materialized into the next epoch. order preserves first-fold order;
	// deltaBlocks counts pending entries per block for waitClear; backlog
	// mirrors len(ledger) for the lock-free DeltaPending fast path.
	ledger      map[deltaKey]*deltaEntry
	order       []deltaKey
	deltaBlocks map[core.Ref]int
	backlog     atomic.Int64
	// deltaTx parks the group's reserved materialization transaction: one
	// log slot withheld from the general pool so a drain can always land
	// at least one ledger chunk, however many application blocks hold the
	// other slots (without it, tx.Free → waitClear with every slot open —
	// the waiter's included — would busy-spin forever). It is taken under
	// g.mu by materializeLocked and handed back by release after the
	// epoch retires it; drains are serialized by g.draining, so at most
	// one taker exists.
	deltaTx atomic.Pointer[Tx]
}

// SetGroupCommit switches the manager's commit mode. It must be called
// while no failure-atomic block is open and no async commit is queued
// (DrainDurable first); blocks begun after the call use the new mode.
func (m *Manager) SetGroupCommit(opts GroupOptions) error {
	if n := m.inUse.Load(); n != 0 {
		return fmt.Errorf("fa: cannot switch commit mode with %d blocks in flight (drain first)", n)
	}
	switch opts.Mode {
	case CommitPerTx:
		m.unreserveDeltaTx()
		m.group.Store(nil)
	case CommitGroup:
		m.unreserveDeltaTx()
		m.group.Store(&groupState{m: m, mode: CommitGroup, combiner: nvm.NewFenceCombiner()})
	case CommitAsync:
		target := opts.BatchTarget
		if target <= 0 {
			target = defaultBatchTarget
		}
		g := &groupState{
			m:           m,
			mode:        CommitAsync,
			pending:     make(map[core.Ref]struct{}),
			manual:      opts.ManualDrain,
			target:      target,
			ledger:      make(map[deltaKey]*deltaEntry),
			deltaBlocks: make(map[core.Ref]int),
		}
		g.cond = sync.NewCond(&g.mu)
		m.unreserveDeltaTx()
		m.group.Store(g)
		m.reserveDeltaTx(g)
	default:
		return fmt.Errorf("fa: unknown commit mode %d", opts.Mode)
	}
	return nil
}

// CommitMode returns the manager's current commit mode.
func (m *Manager) CommitMode() CommitMode {
	if g := m.group.Load(); g != nil {
		return g.mode
	}
	return CommitPerTx
}

// DurableWatermark returns the highest async ticket that is fully
// durable (applied, retired, psynced). Zero in the synchronous modes,
// where every returned Commit is already durable.
func (m *Manager) DurableWatermark() uint64 {
	g := m.group.Load()
	if g == nil || g.mode != CommitAsync {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.durable
}

// IssuedTickets returns the number of async commit tickets handed out;
// AwaitDurable(IssuedTickets()) waits for everything committed so far.
func (m *Manager) IssuedTickets() uint64 {
	g := m.group.Load()
	if g == nil || g.mode != CommitAsync {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.issued
}

// AwaitDurable blocks until the given async ticket is durable, draining
// the queue if necessary. A zero ticket, or any ticket in a synchronous
// mode, returns immediately.
func (m *Manager) AwaitDurable(ticket uint64) {
	g := m.group.Load()
	if g == nil || g.mode != CommitAsync || ticket == 0 {
		return
	}
	g.mu.Lock()
	for g.durable < ticket {
		if len(g.queue) == 0 && len(g.order) == 0 && !g.draining {
			break // ticket never issued or already drained elsewhere
		}
		g.drainLocked()
	}
	g.mu.Unlock()
}

// DrainDurable commits everything currently queued as one epoch (or
// waits out a drain already in flight) and returns the new watermark.
// In ManualDrain mode this is the only epoch boundary.
func (m *Manager) DrainDurable() uint64 {
	g := m.group.Load()
	if g == nil || g.mode != CommitAsync {
		return 0
	}
	g.mu.Lock()
	for len(g.queue) > 0 || len(g.order) > 0 || g.draining {
		g.drainLocked()
	}
	w := g.durable
	g.mu.Unlock()
	return w
}

// enqueue persists tx's log and write set (unfenced), assigns its epoch
// ticket and parks it on the queue. The commit's visible effects (the
// apply, freed-object recycling, deferred follow-ups) happen at drain
// time on the draining goroutine.
func (g *groupState) enqueue(tx *Tx) uint64 {
	tx.commitStage1Body()
	g.mu.Lock()
	g.issued++
	tx.ticket = g.issued
	g.queue = append(g.queue, tx)
	for i := range tx.writes {
		g.pending[tx.writes[i].orig] = struct{}{}
	}
	n := len(g.queue)
	g.m.stats.AsyncCommits.Inc()
	limit := g.target
	if st := g.m.state.Load(); st != nil && st.total/2 < limit {
		limit = st.total / 2
	}
	if limit < 1 {
		limit = 1
	}
	ticket := tx.ticket
	if !g.manual && n >= limit {
		g.drainLocked()
	}
	g.mu.Unlock()
	return ticket
}

// waitClear blocks until no queued commit holds the block orig and no
// delta is pending on it, draining the queue if needed. Called on every
// transactional access to an original block (reads included: a block
// touched by a queued commit has a newer image in its redo log, and one
// with a pending delta has a newer word in the ledger; basing a new
// block on the stale original would lose the queued update). No-op
// outside async mode.
func (g *groupState) waitClear(orig core.Ref) {
	if g.mode != CommitAsync {
		return
	}
	g.mu.Lock()
	for {
		_, held := g.pending[orig]
		if !held && g.deltaBlocks[orig] == 0 {
			g.mu.Unlock()
			return
		}
		g.drainLocked()
	}
}

// drainLocked drains the current queue as one epoch. Caller holds g.mu;
// it is released during the epoch and re-held on return. If another
// drain is in flight, waits for it instead (the queue it took is a
// superset decision made under the same lock, so waiting suffices for
// waitClear/AwaitDurable to make progress on re-check).
func (g *groupState) drainLocked() {
	for g.draining {
		g.cond.Wait()
	}
	batch := g.queue
	dtxs, leftoverMin := g.materializeLocked()
	if len(batch) == 0 && len(dtxs) == 0 {
		if leftoverMin != 0 {
			// Ledger entries exist but no log slot was free — not even
			// the reserved one (only possible on a heap too small to
			// reserve, see reserveDeltaTx). Yield so the holders, open
			// application blocks, can finish; the caller's loop retries.
			g.mu.Unlock()
			deltaYield()
			g.mu.Lock()
		}
		return
	}
	g.queue = nil
	// Every ticket issued so far is durable, in batch, or materialized
	// into dtxs — except those folded into a leftover ledger entry, which
	// cap the acknowledgment.
	last := g.issued
	if leftoverMin != 0 && leftoverMin-1 < last {
		last = leftoverMin - 1
	}
	g.draining = true
	g.mu.Unlock()

	origs := g.drainEpoch(append(dtxs, batch...))

	g.mu.Lock()
	for _, orig := range origs {
		delete(g.pending, orig)
	}
	if last > g.durable {
		g.durable = last
	}
	g.draining = false
	g.cond.Broadcast()
}

// drainEpoch runs the group-commit pipeline over the batch: one fence
// set for the whole epoch instead of one per commit.
//
//	F0  pfence        — every queued log+write set durable (stage 1)
//	    marks + pwb   — all blocks' committed marks written back
//	F1  pfence        — the epoch's durable commit point
//	    apply + flush — redo logs applied, dirty originals written back
//	F2  pfence
//	    retire + pwb  — every slot back to idle/0
//	F3  psync         — epoch fully durable; slots may now be reused
//
// Crash analysis: before F1 only a (line-granular) subset of marks can
// be durable, and each marked block's log is complete thanks to F0, so
// recovery replays an all-or-nothing subset of this epoch. After F1 the
// whole epoch replays. Slots are released (commitCleanup → release) only
// after F3, so no retired slot can collect fresh entries while its old
// committed mark is still durable. Earlier epochs were fully retired
// before this epoch's marks were written, hence the prefix property.
// epochStage1 completes stage 1 for an epoch batch. Queued commits
// persisted their log, masks and write set at enqueue; detached delta
// materializations (ticket 0) never passed enqueue and run
// commitStage1Body here instead — their entry count, patched line masks
// and in-flight images must be durable under F0, or the stage-2 commit
// mark would land on a slot whose durable count is still 0 and recovery
// would replay the fold as an empty transaction, silently dropping it
// while its same-epoch siblings apply.
func epochStage1(batch []*Tx) {
	for _, tx := range batch {
		if tx.ticket == 0 {
			tx.commitStage1Body()
		}
	}
}

func (g *groupState) drainEpoch(batch []*Tx) (origs []core.Ref) {
	pool := batch[0].h.Pool()
	// Capture the pending originals for removal after the epoch: the
	// cleanup below truncates tx.writes and recycles the Tx objects.
	queued := 0
	for _, tx := range batch {
		if tx.ticket != 0 {
			queued++ // detached delta txs don't count as epoch commits
		}
		for i := range tx.writes {
			origs = append(origs, tx.writes[i].orig)
		}
	}
	epochStage1(batch)
	pool.PFence() // F0
	for _, tx := range batch {
		tx.commitStage2Body()
	}
	pool.PFence() // F1: the epoch commit point
	for _, tx := range batch {
		tx.commitStage3Body()
	}
	pool.PFence() // F2
	for _, tx := range batch {
		tx.commitRetireBody()
	}
	pool.PSync() // F3
	g.m.stats.Epochs.Inc()
	g.m.stats.EpochTxs.Add(uint64(queued))
	for _, tx := range batch {
		tx.commitCleanup()
	}
	return origs
}

// commitGrouped is the synchronous group-commit path: the same stores,
// write-backs and stage order as the per-Tx protocol, with each barrier
// shared through the combiner. Commit returns ⇒ durable, exactly §4.2.
func (tx *Tx) commitGrouped(g *groupState) {
	pool := tx.h.Pool()
	tx.commitStage1Body()
	g.combiner.Fence(pool)
	tx.commitStage2Body()
	g.combiner.Fence(pool)
	tx.commitStage3Body()
	g.combiner.Fence(pool)
	tx.commitRetireBody()
	g.combiner.Sync(pool)
	tx.commitCleanup()
}

// groupSnapshot folds the group-commit gauges into an FASnapshot: the
// fences saved by combining/epoch amortization and the async backlog.
func (m *Manager) groupSnapshot(snap *obs.FASnapshot) {
	g := m.group.Load()
	if g == nil {
		return
	}
	if g.combiner != nil {
		barriers, issued, _ := g.combiner.Stats()
		snap.CombinedFences += barriers - issued
	}
	if g.mode == CommitAsync {
		// Per-Tx commit issues 4 barriers; an epoch issues 4 for the
		// whole batch. Pure-delta epochs can push Epochs past EpochTxs.
		if snap.EpochTxs > snap.Epochs {
			snap.CombinedFences += 4 * (snap.EpochTxs - snap.Epochs)
		}
		// Each folded-away op would have cost its own log write + line
		// flush; materialized entries and the still-pending backlog are
		// the ones that (will) pay.
		if backlog := uint64(g.backlog.Load()); snap.DeltaOps >= snap.DeltaEntries+backlog {
			snap.DeltaFlushesSaved = snap.DeltaOps - snap.DeltaEntries - backlog
		}
		g.mu.Lock()
		snap.WatermarkLag = g.issued - g.durable
		g.mu.Unlock()
	}
}
