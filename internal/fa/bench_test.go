package fa

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/nvm"
)

// BenchmarkCommitSingleField is the canonical commit: one dirty cache
// line, steady-state warm transaction. The interesting companion numbers
// are the obs counters (5 pwb per commit); the wall-clock here tracks the
// volatile overhead of the pipeline.
func BenchmarkCommitSingleField(b *testing.B) {
	h, mgr, _, cls := openFA(b, false)
	acc := newAccount(b, h, cls, 0, 0, "acc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mgr.Run(func(tx *Tx) error {
			return tx.WriteUint64(acc.Core(), accA, uint64(i))
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCommitParallel exercises the lock-free Begin/End path from
// every P: each worker commits against its own account, so the measured
// contention is purely the manager's (slot freelist + warm-Tx cache).
func BenchmarkCommitParallel(b *testing.B) {
	pool := nvm.New(1<<24, nvm.Options{})
	cls := accountClass()
	mgr := NewManager()
	h, err := core.Open(pool, core.Config{
		HeapOptions: heap.Options{LogSlots: 64, LogSlotSize: 1 << 14},
		Classes:     []*core.Class{cls},
		LogHandler:  mgr,
	})
	if err != nil {
		b.Fatal(err)
	}
	var failed atomic.Bool
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		po, err := h.Alloc(cls, accLen)
		if err != nil {
			b.Error(err)
			failed.Store(true)
			return
		}
		acc := po.(*account)
		acc.Core().Validate()
		i := uint64(0)
		for pb.Next() {
			i++
			if err := mgr.Run(func(tx *Tx) error {
				return tx.WriteUint64(acc.Core(), accA, i)
			}); err != nil {
				b.Error(err)
				failed.Store(true)
				return
			}
		}
	})
	if failed.Load() {
		b.Fatal("parallel commit worker failed")
	}
}
