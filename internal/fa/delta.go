// Net-delta commit for write-hot counters (DESIGN.md §19).
//
// Under zipfian traffic the async epoch queue still pays one redo-log
// entry and one line flush per RMW even when N increments land on one
// counter — only the net delta matters at the durability watermark.
// AddDelta therefore skips the per-op Tx entirely: it folds the delta
// into a volatile ledger keyed by (block, offset) and hands out an epoch
// ticket, exactly like an async commit. At the next drain the ledger is
// materialized into detached transactions — one redo-log write entry and
// one line flush per hot word per epoch, however many ops folded into it
// — which join the epoch's batch and ride the same F0–F3 fence set.
//
// Correctness hangs on three rules:
//
//   - A delta and a transactional write to the same block never share an
//     epoch with separate log entries: AddDelta drains while the block is
//     held by a queued commit, and every transactional access (waitClear)
//     or Free of a block drains while the block has a pending delta. So
//     each epoch keeps the disjoint-write-set property parallel replay
//     relies on, and a materialized fold always reads the post-apply
//     image of its block. While the epoch carrying a fold is in flight,
//     the fold's block sits in the pending set like a queued commit's
//     blocks, so no transactional snapshot forks it mid-apply. These
//     two drains cover queued commits only:
//     an *open* transaction's write set is invisible to the manager, so
//     a delta folded on a block between another Tx's first touch of it
//     and that Tx's enqueue would be clobbered by the Tx's pre-fold
//     snapshot. Callers must therefore serialize AddDelta against open
//     transactional writers of the same block — the grid does this with
//     its per-key stripe locks, held across both Commit and AddDelta.
//   - The watermark only advances over materialized tickets: the drain
//     acknowledges min(issued-at-snapshot, first-unmaterialized-1), so a
//     ledger entry left behind by slot exhaustion keeps every ticket that
//     folded into it unacknowledged until a later drain lands it.
//   - Recovery needs no new machinery: a materialized fold is an ordinary
//     kindWrite entry whose in-flight image holds the summed word, so a
//     crash replays the net delta all-or-nothing with its epoch — the
//     same state the per-op sequence would have reached.
//
// Aborts are the degenerate case: a delta is never owned by an open
// application Tx, so there is nothing to unfold — an aborted Tx simply
// never called AddDelta. The crashmc griddelta workload explores the
// crash surface; TestDelta* in group_test.go pin the volatile protocol.
package fa

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/nvm"
)

// ErrDeltaUnsupported is returned by AddDelta outside async commit mode;
// callers fall back to a per-Tx read-modify-write.
var ErrDeltaUnsupported = fmt.Errorf("fa: delta ledger requires async commit mode")

// deltaKey addresses one foldable word: a block and the block-local
// offset of the 8-byte counter (header included in the coordinate space,
// matching lineMask).
type deltaKey struct {
	orig core.Ref
	off  uint64
}

// deltaEntry is one pending net delta. minTicket is the first ticket
// that folded in — the watermark cannot pass minTicket-1 until the entry
// materializes.
type deltaEntry struct {
	sum       int64
	minTicket uint64
}

const (
	// deltaLedgerMax bounds the volatile ledger; reaching it forces a
	// drain (the fold window is "until someone needs durability", not
	// "unbounded memory").
	deltaLedgerMax = 1024
	// deltaTxChunk caps the write entries carried by one detached
	// materialization Tx, keeping each well under any slot's capacity.
	deltaTxChunk = 256
)

// AddDelta folds a signed delta into the 8-byte little-endian word at
// block-local offset off of block orig, and returns an epoch ticket with
// async-commit semantics: the delta is applied and durable when the
// ticket passes the watermark (AwaitDurable), and any transactional or
// settled read of the block drains it first. Outside async mode it
// returns ErrDeltaUnsupported.
//
// Caller contract: AddDelta must not race an open failure-atomic block
// that has already touched orig but not yet committed — the manager only
// sees queued commits, so such a fold would be overwritten by the open
// block's earlier snapshot at its epoch apply (see the package comment;
// the grid's stripe locks provide this serialization).
func (m *Manager) AddDelta(orig core.Ref, off uint64, delta int64) (uint64, error) {
	g := m.group.Load()
	if g == nil || g.mode != CommitAsync {
		return 0, ErrDeltaUnsupported
	}
	st := m.state.Load()
	if st == nil {
		return 0, fmt.Errorf("fa: manager not attached to a heap")
	}
	if off < heap.HeaderSize || off+8 > heap.BlockSize {
		return 0, fmt.Errorf("fa: delta offset %d outside block payload", off)
	}
	if !st.h.Mem().IsBlockRef(orig) {
		return 0, fmt.Errorf("fa: delta target %#x is not a block", orig)
	}
	k := deltaKey{orig: orig, off: off}
	g.mu.Lock()
	for {
		// A queued commit holds a newer image of this block in its redo
		// log; folding against the pre-apply original would be clobbered
		// by the epoch apply. Drain first (mirror of waitClear).
		if _, held := g.pending[orig]; !held {
			break
		}
		g.drainLocked()
	}
	if _, ok := g.ledger[k]; !ok && len(g.ledger) >= deltaLedgerMax {
		g.drainLocked()
	}
	g.issued++
	ticket := g.issued
	if e, ok := g.ledger[k]; ok {
		e.sum += delta
		m.stats.DeltasFolded.Inc()
	} else {
		g.ledger[k] = &deltaEntry{sum: delta, minTicket: ticket}
		g.order = append(g.order, k)
		g.deltaBlocks[orig]++
		g.backlog.Add(1)
	}
	m.stats.DeltaOps.Inc()
	g.mu.Unlock()
	return ticket, nil
}

// DeltaPending reports whether block orig has an unmaterialized delta.
// The common no-deltas case is one atomic load; readers that get true
// call Settle before trusting the raw block image.
func (m *Manager) DeltaPending(orig core.Ref) bool {
	g := m.group.Load()
	if g == nil || g.mode != CommitAsync || g.backlog.Load() == 0 {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.deltaBlocks[orig] > 0
}

// Settle drains until block orig is held by no queued commit and has no
// pending delta, making its raw NVMM image current. No-op outside async
// mode.
func (m *Manager) Settle(orig core.Ref) {
	if g := m.group.Load(); g != nil {
		g.waitClear(orig)
	}
}

// materializeLocked turns the ledger into detached transactions — grp
// nil so their accessors never recurse into the queue we are draining,
// ticket 0 so they are invisible to the group-commit gauges. Each ledger
// entry becomes one kindWrite log entry whose in-flight image carries
// the summed word. Called with g.mu held and g.draining false.
//
// Entries that cannot materialize (every log slot busy) stay in the
// ledger; leftoverMin is the smallest ticket still folded into one of
// them (0 if none), which caps how far this drain may advance the
// watermark.
func (g *groupState) materializeLocked() (dtxs []*Tx, leftoverMin uint64) {
	if len(g.order) == 0 {
		return nil, 0
	}
	var tx *Tx
	newTx := func() bool {
		t, err := g.m.Begin()
		if err != nil {
			// No free slot: fall back to the group's reserved Tx, so a
			// drain lands at least one chunk however many application
			// blocks hold the pool (the waitClear progress guarantee).
			if t = g.takeReservedLocked(); t == nil {
				return false
			}
		}
		t.grp = nil
		tx = t
		dtxs = append(dtxs, t)
		return true
	}
	var left []deltaKey
	stuck := false
	for _, k := range g.order {
		e := g.ledger[k]
		if stuck {
			left = append(left, k)
			continue
		}
		if tx != nil && len(tx.writes) >= deltaTxChunk {
			// Rotate, unless this block already has an in-flight copy in
			// the current chunk — splitting one block across two slots
			// would break the epoch's disjoint-write-set invariant.
			if _, ok := tx.inflight[k.orig]; !ok {
				tx = nil
			}
		}
		if tx == nil && !newTx() {
			stuck = true
			left = append(left, k)
			continue
		}
		if err := tx.foldDelta(k.orig, k.off, e.sum); err != nil {
			// ErrLogFull on a shared slot layout smaller than the chunk:
			// rotate once and retry on a fresh slot.
			if !newTx() || tx.foldDelta(k.orig, k.off, e.sum) != nil {
				stuck = true
				left = append(left, k)
				continue
			}
		}
		delete(g.ledger, k)
		if g.deltaBlocks[k.orig]--; g.deltaBlocks[k.orig] <= 0 {
			delete(g.deltaBlocks, k.orig)
		}
		// The block leaves the ledger now but its fold is only applied
		// when the epoch completes: park it in pending — exactly like a
		// queued commit's blocks — so waitClear and AddDelta keep
		// treating it as held until drainLocked clears the epoch's
		// origs. Without this a transactional snapshot taken during the
		// drain would race the fold's apply and fork history.
		g.pending[k.orig] = struct{}{}
		g.backlog.Add(-1)
		g.m.stats.DeltaEntries.Inc()
	}
	for _, k := range left {
		if e := g.ledger[k]; leftoverMin == 0 || e.minTicket < leftoverMin {
			leftoverMin = e.minTicket
		}
	}
	g.order = left
	// A rotation raced a retry into an empty Tx: drop it from the epoch.
	out := dtxs[:0]
	for _, t := range dtxs {
		if len(t.writes) > 0 {
			out = append(out, t)
		} else {
			t.Abort()
		}
	}
	return out, leftoverMin
}

// foldDelta adds sum to the 8-byte word at block-local offset off of
// orig through the redo machinery: first touch snapshots the block into
// an in-flight copy, then the summed word is stored there, its line
// masked dirty and queued for the stage-1 write-back. One log entry, one
// flushed line — however many ops folded into sum.
func (tx *Tx) foldDelta(orig core.Ref, off uint64, sum int64) error {
	i, err := tx.inflightFor(orig)
	if err != nil {
		return err
	}
	w := &tx.writes[i]
	w.mask |= lineMask(off, 8)
	pool := tx.h.Pool()
	p := w.inf + off
	pool.WriteUint64(p, pool.ReadUint64(p)+uint64(sum))
	tx.flush.AddRange(p, 8)
	return nil
}

// reserveDeltaTx withholds one log slot from the general pool and parks
// a pre-built transaction on g: delta materialization then always has a
// slot to land a ledger chunk in, which is the progress guarantee the
// waitClear/AwaitDurable drain loops rely on (without it, a Tx freeing a
// block with a pending delta while every slot is held — its own included
// — would spin forever). Called with no blocks in flight (SetGroupCommit
// enforces inUse == 0; RecoverLogs runs at attach), so every slot is in
// the cache or on the freelist. A heap with fewer than two slots skips
// the reservation — withholding its only slot would break Begin outright
// — and keeps the yield fallback.
func (m *Manager) reserveDeltaTx(g *groupState) {
	st := m.state.Load()
	if st == nil || st.total < 2 {
		return
	}
	if tx := m.cache.get(); tx != nil {
		tx.reserved = g
		g.deltaTx.Store(tx)
		return
	}
	slot, ok := m.slots.pop()
	if !ok {
		return
	}
	g.deltaTx.Store(&Tx{
		m:          m,
		h:          st.h,
		slot:       slot,
		base:       st.off + uint64(slot*st.size),
		maxEntries: uint64((st.size - slotEntries) / entrySize),
		inflight:   make(map[core.Ref]int),
		allocs:     make(map[core.Ref]bool),
		proxies:    make(map[core.Ref]core.PObject),
		flush:      nvm.NewFlushSet(),
		blocks:     st.h.Mem().NewTransientPool(transientCap),
		reserved:   g,
	})
}

// unreserveDeltaTx returns the current group's reserved slot, if any, to
// the general pool; SetGroupCommit calls it before replacing the group
// state so a mode switch never leaks the slot.
func (m *Manager) unreserveDeltaTx() {
	g := m.group.Load()
	if g == nil || g.mode != CommitAsync {
		return
	}
	if tx := g.deltaTx.Swap(nil); tx != nil {
		tx.reserved = nil
		tx.blocks.Drain()
		m.slots.push(tx.slot)
	}
}

// takeReservedLocked claims the group's reserved materialization Tx with
// Begin's bookkeeping. Caller holds g.mu with g.draining false, so the
// previous drain has handed the Tx back already; nil means the group
// never reserved one (sub-two-slot heap) or this drain filled it.
func (g *groupState) takeReservedLocked() *Tx {
	t := g.deltaTx.Swap(nil)
	if t == nil {
		return nil
	}
	t.depth = 1
	g.m.inUse.Add(1)
	g.m.stats.Begun.Inc()
	g.m.stats.TxReuse.Inc()
	return t
}

// deltaYield backs off when a drain found work but no free slot; the
// holders are open application blocks that need the CPU to finish.
func deltaYield() { runtime.Gosched() }
