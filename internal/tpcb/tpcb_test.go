package tpcb

import (
	"sync"
	"testing"
	"time"

	"repro/internal/nvm"
)

func sumBalances(t *testing.T, b Bank) int64 {
	t.Helper()
	var sum int64
	for i := 0; i < b.Accounts(); i++ {
		v, err := b.Balance(i)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	return sum
}

func TestJNVMBankTransfers(t *testing.T) {
	pool := nvm.New(1<<24, nvm.Options{})
	b, err := OpenJNVMBank(pool, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Transfer(3, 7, 50); err != nil {
		t.Fatal(err)
	}
	if v, _ := b.Balance(3); v != -50 {
		t.Fatalf("balance(3) = %d", v)
	}
	if v, _ := b.Balance(7); v != 50 {
		t.Fatalf("balance(7) = %d", v)
	}
	if err := b.Transfer(0, 200, 1); err == nil {
		t.Fatal("out-of-range account accepted")
	}
	if sumBalances(t, b) != 0 {
		t.Fatal("money created or destroyed")
	}
}

func TestJNVMBankSurvivesRestart(t *testing.T) {
	pool := nvm.New(1<<24, nvm.Options{})
	b, err := OpenJNVMBank(pool, 50, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := b.Transfer(i, i+1, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := make([]int64, 50)
	for i := range want {
		want[i], _ = b.Balance(i)
	}

	// Crash: drop all volatile state, reopen the pool.
	b2, err := OpenJNVMBank(pool, 50, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got, _ := b2.Balance(i); got != want[i] {
			t.Fatalf("balance(%d) = %d, want %d", i, got, want[i])
		}
	}
	if sumBalances(t, b2) != 0 {
		t.Fatal("conservation violated after restart")
	}
	if !b2.Heap().RecoveryStats.GraphTraversed {
		t.Fatal("full recovery should traverse the graph")
	}
}

func TestJNVMBankNoGCRestart(t *testing.T) {
	pool := nvm.New(1<<24, nvm.Options{})
	b, err := OpenJNVMBank(pool, 50, true)
	if err != nil {
		t.Fatal(err)
	}
	b.Transfer(1, 2, 10)
	b2, err := OpenJNVMBank(pool, 50, true)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Heap().RecoveryStats.GraphTraversed {
		t.Fatal("nogc mode traversed the graph")
	}
	if v, _ := b2.Balance(2); v != 10 {
		t.Fatalf("balance(2) = %d", v)
	}
}

func TestJNVMBankCrashAtomicity(t *testing.T) {
	// Tracked pool + strict crash right after Transfer returns: the
	// committed failure-atomic block survives; conservation holds.
	pool := nvm.New(1<<24, nvm.Options{Tracked: true})
	b, err := OpenJNVMBank(pool, 20, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := b.Transfer(i, 19-i, 5); err != nil {
			t.Fatal(err)
		}
	}
	img := pool.CrashImage(nvm.CrashStrict, nil)
	_ = img // CrashStrict ignores rng only for strict; pass through
	b2, err := OpenJNVMBank(img, 20, false)
	if err != nil {
		t.Fatal(err)
	}
	if sumBalances(t, b2) != 0 {
		t.Fatal("conservation violated across strict crash")
	}
	// Committed transfers are durable.
	if v, _ := b2.Balance(0); v != -5 {
		t.Fatalf("balance(0) = %d", v)
	}
}

func TestJNVMBankConcurrentTransfers(t *testing.T) {
	pool := nvm.New(1<<25, nvm.Options{})
	b, err := OpenJNVMBank(pool, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				// Disjoint account pairs per worker: the paper relies on
				// Infinispan's locks; here workers avoid write conflicts.
				base := w * 8
				if err := b.Transfer(base+(i%4), base+4+(i%4), 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if sumBalances(t, b) != 0 {
		t.Fatal("conservation violated under concurrency")
	}
}

func TestVolatileBank(t *testing.T) {
	b := NewVolatileBank(10)
	b.Transfer(1, 2, 30)
	if v, _ := b.Balance(2); v != 30 {
		t.Fatalf("balance = %d", v)
	}
	if sumBalances(t, b) != 0 {
		t.Fatal("conservation")
	}
}

func TestFSBankPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenFSBank(dir, 20, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Transfer(2, 3, 11); err != nil {
		t.Fatal(err)
	}
	b2, err := OpenFSBank(dir, 20, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.WarmCache(2); err != nil {
		t.Fatal(err)
	}
	if v, _ := b2.Balance(3); v != 11 {
		t.Fatalf("balance(3) = %d", v)
	}
	if v, _ := b2.Balance(2); v != -11 {
		t.Fatalf("balance(2) = %d", v)
	}
}

func TestHarnessTimeline(t *testing.T) {
	pool := nvm.New(1<<25, nvm.Options{})
	sys := System{
		Name:  "J-PFA",
		Start: func() (Bank, error) { return OpenJNVMBank(pool, 500, false) },
		Restart: func() (Bank, error) {
			return OpenJNVMBank(pool, 500, false)
		},
	}
	tl, err := Run(sys, RunOptions{
		Accounts:   500,
		Clients:    2,
		RunFor:     400 * time.Millisecond,
		CrashAfter: 200 * time.Millisecond,
		Bucket:     25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Points) == 0 {
		t.Fatal("empty timeline")
	}
	if tl.RestartDelay <= 0 {
		t.Fatal("no restart delay measured")
	}
	if tl.NominalBefore() <= 0 {
		t.Fatalf("no pre-crash throughput: %v", tl.NominalBefore())
	}
	if tl.NominalAfter() <= 0 {
		t.Fatalf("no post-recovery throughput")
	}
}
