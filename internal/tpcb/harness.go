package tpcb

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// System abstracts one Figure 11 configuration: how to start the bank and
// how to restart it after a crash (reopening durable state, or starting
// blank for Volatile).
type System struct {
	Name string
	// Start creates the bank (including initial account creation).
	Start func() (Bank, error)
	// Crash discards the volatile half of the system (the paper's
	// SIGKILL on the container). May be nil.
	Crash func(Bank)
	// Restart reopens the bank from its durable state and returns it
	// ready to serve. Recovery work (log replay, recovery GC, cache
	// warming) happens inside and is timed by the harness.
	Restart func() (Bank, error)
}

// Point is one bucket of the throughput timeline.
type Point struct {
	T   time.Duration // bucket start, relative to the run start
	Ops int           // transfers completed in the bucket
}

// Timeline is the outcome of one crash/recovery run.
type Timeline struct {
	System       string
	Points       []Point
	CrashAt      time.Duration
	RestartDelay time.Duration // crash -> first request served
	SetupTime    time.Duration
}

// NominalBefore returns the mean throughput (ops/s) over the buckets
// preceding the crash.
func (tl *Timeline) NominalBefore() float64 {
	return tl.meanOps(0, tl.CrashAt)
}

// NominalAfter returns the mean throughput over the post-recovery tail.
func (tl *Timeline) NominalAfter() float64 {
	if len(tl.Points) == 0 {
		return 0
	}
	last := tl.Points[len(tl.Points)-1].T
	from := tl.CrashAt + tl.RestartDelay + (last-tl.CrashAt-tl.RestartDelay)/2
	return tl.meanOps(from, last+time.Hour)
}

func (tl *Timeline) meanOps(from, to time.Duration) float64 {
	if len(tl.Points) < 2 {
		return 0
	}
	bucket := tl.Points[1].T - tl.Points[0].T
	total, n := 0, 0
	for _, p := range tl.Points {
		if p.T >= from && p.T < to {
			total += p.Ops
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(total) / (float64(n) * bucket.Seconds())
}

// RunOptions configures the harness.
type RunOptions struct {
	Accounts int
	Clients  int
	// RunFor is the total injection time excluding the restart gap.
	RunFor time.Duration
	// CrashAfter is when the SIGKILL lands.
	CrashAfter time.Duration
	// Bucket is the timeline resolution.
	Bucket time.Duration
	Seed   int64
}

func (o RunOptions) defaults() RunOptions {
	if o.Accounts == 0 {
		o.Accounts = 10_000
	}
	if o.Clients == 0 {
		o.Clients = 4
	}
	if o.RunFor == 0 {
		o.RunFor = 2 * time.Second
	}
	if o.CrashAfter == 0 {
		o.CrashAfter = o.RunFor / 2
	}
	if o.Bucket == 0 {
		o.Bucket = 50 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	return o
}

// Run drives the Figure 11 experiment against one system: inject continuous
// random transfers, crash at CrashAfter, restart, keep injecting, and
// report the bucketed throughput timeline plus the restart delay.
func Run(sys System, opts RunOptions) (*Timeline, error) {
	opts = opts.defaults()
	setupStart := time.Now()
	bank, err := sys.Start()
	if err != nil {
		return nil, err
	}
	tl := &Timeline{System: sys.Name, SetupTime: time.Since(setupStart)}

	nBuckets := int(opts.RunFor/opts.Bucket) + 2
	buckets := make([]atomic.Int64, nBuckets)
	start := time.Now()
	var clock atomic.Int64 // accumulated paused time (restart gap)

	inject := func(b Bank, stop <-chan struct{}) {
		var wg sync.WaitGroup
		for c := 0; c < opts.Clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(opts.Seed + int64(c)))
				for {
					select {
					case <-stop:
						return
					default:
					}
					from := rng.Intn(opts.Accounts)
					to := rng.Intn(opts.Accounts)
					if err := b.Transfer(from, to, int64(rng.Intn(100))); err != nil {
						continue
					}
					idx := int((time.Since(start) - time.Duration(clock.Load())) / opts.Bucket)
					if idx >= 0 && idx < nBuckets {
						buckets[idx].Add(1)
					}
				}
			}(c)
		}
		wg.Wait()
	}

	// Phase 1: until the crash.
	stop1 := make(chan struct{})
	done1 := make(chan struct{})
	go func() { inject(bank, stop1); close(done1) }()
	time.Sleep(opts.CrashAfter)
	close(stop1)
	<-done1
	tl.CrashAt = opts.CrashAfter

	// The crash: volatile state is gone.
	if sys.Crash != nil {
		sys.Crash(bank)
	}
	restartStart := time.Now()
	bank, err = sys.Restart()
	if err != nil {
		return nil, err
	}
	// First request marks the end of the outage.
	if err := bank.Transfer(0, 1, 1); err != nil {
		return nil, err
	}
	tl.RestartDelay = time.Since(restartStart)
	clock.Store(int64(tl.RestartDelay)) // timeline excludes the gap

	// Phase 2: the remainder of the injection time.
	stop2 := make(chan struct{})
	done2 := make(chan struct{})
	go func() { inject(bank, stop2); close(done2) }()
	time.Sleep(opts.RunFor - opts.CrashAfter)
	close(stop2)
	<-done2

	for i := range buckets {
		tl.Points = append(tl.Points, Point{T: time.Duration(i) * opts.Bucket, Ops: int(buckets[i].Load())})
	}
	return tl, nil
}
