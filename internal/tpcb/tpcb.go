// Package tpcb implements the TPC-B-like bank of §5.3.3: a server holding
// fixed-size accounts (140 B each in the paper) with a single transfer
// operation executed in a failure-atomic block, plus the crash/restart
// harness that regenerates the recovery timeline of Figure 11.
//
// The paper runs the bank in a container behind REST and kills it with
// SIGKILL; here the "container" is the volatile half of the process state
// (proxies, caches, the core.Heap itself), which a crash discards before
// the pool is reopened and recovered. This preserves the measured
// phenomenon — recovery-GC time over the account graph — without the
// Docker/HTTP noise.
package tpcb

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/fa"
	"repro/internal/heap"
	"repro/internal/nvm"
	"repro/internal/pdt"
	"repro/internal/store"
)

// AccountSize matches the paper's 140 B accounts: an 8-byte balance plus
// opaque padding (owner name, branch, teller in TPC-B).
const AccountSize = 140

// Bank is the single-operation TPC-B server interface.
type Bank interface {
	// Transfer moves amount between two accounts, atomically for the
	// persistent implementations.
	Transfer(from, to int, amount int64) error
	// Balance reads one account.
	Balance(i int) (int64, error)
	// Accounts returns the account count.
	Accounts() int
}

// ---- J-NVM bank (J-PFA / J-PFA-nogc) ----

// classAccount is the persistent account class.
const classAccount = "tpcb.account"

// Classes returns the bank's persistent class descriptors.
func Classes() []*core.Class {
	return []*core.Class{{
		Name:    classAccount,
		Factory: func(o *core.Object) core.PObject { return o },
	}}
}

// JNVMBank stores accounts as persistent objects referenced from a J-PDT
// array; transfers run inside failure-atomic blocks.
type JNVMBank struct {
	h   *core.Heap
	mgr *fa.Manager
	arr *pdt.PRefArray
	n   int
	// stripes play the role of Infinispan's per-key locks (§5.3.2):
	// concurrent transfers serialize only when their accounts collide.
	stripes [64]sync.Mutex
}

// OpenJNVMBank creates (first run) or reopens (after a crash) the bank on
// the pool. skipGraphGC selects the J-PFA-nogc recovery mode of Figure 11.
// This is correct for this application: every account is allocated and
// published in the same failure-atomic block, so no invalid-but-reachable
// object can exist after a crash.
func OpenJNVMBank(pool *nvm.Pool, accounts int, skipGraphGC bool) (*JNVMBank, error) {
	return OpenJNVMBankRec(pool, accounts, skipGraphGC, core.RecoverOptions{})
}

// OpenJNVMBankRec is OpenJNVMBank with explicit recovery options, so the
// crash explorer can pin recovery to the serial oracle or the parallel
// pipeline.
func OpenJNVMBankRec(pool *nvm.Pool, accounts int, skipGraphGC bool, rec core.RecoverOptions) (*JNVMBank, error) {
	mgr := fa.NewManager()
	classes := append(pdt.Classes(), Classes()...)
	h, err := core.Open(pool, core.Config{
		HeapOptions: heap.Options{LogSlots: 64, LogSlotSize: 1 << 14},
		Classes:     classes,
		LogHandler:  mgr,
		SkipGraphGC: skipGraphGC,
		Recover:     rec,
	})
	if err != nil {
		return nil, err
	}
	b := &JNVMBank{h: h, mgr: mgr, n: accounts}
	if h.Root().Exists("bank.accounts") {
		po, err := h.Root().Get("bank.accounts")
		if err != nil {
			return nil, err
		}
		b.arr = po.(*pdt.PRefArray)
		if b.arr.Cap() < accounts {
			return nil, fmt.Errorf("tpcb: pool holds %d accounts, want %d", b.arr.Cap(), accounts)
		}
		return b, nil
	}
	arr, err := pdt.NewRefArray(h, accounts)
	if err != nil {
		return nil, err
	}
	// Bulk-create the accounts with the low-level batching discipline:
	// everything flushed and validated, then a single fence before the
	// array publication (§3.2.3).
	for i := 0; i < accounts; i++ {
		po, err := h.Alloc(h.MustClass(classAccount), AccountSize)
		if err != nil {
			return nil, err
		}
		o := po.Core()
		o.WriteInt64(0, 0)
		o.PWB()
		o.Validate()
		arr.WriteRef(uint64(i)*8, o.Ref())
	}
	arr.PWB()
	if err := h.Root().Put("bank.accounts", arr); err != nil {
		return nil, err
	}
	b.arr = arr
	return b, nil
}

// Heap exposes the underlying heap (recovery statistics).
func (b *JNVMBank) Heap() *core.Heap { return b.h }

// Manager exposes the bank's failure-atomic manager so benchmarks can read
// its commit-pipeline counters.
func (b *JNVMBank) Manager() *fa.Manager { return b.mgr }

// Accounts implements Bank.
func (b *JNVMBank) Accounts() int { return b.n }

func (b *JNVMBank) account(i int) (*core.Object, error) {
	if i < 0 || i >= b.n {
		return nil, fmt.Errorf("tpcb: account %d out of range", i)
	}
	return b.h.Inspect(b.arr.GetRef(i)), nil
}

// Balance implements Bank.
func (b *JNVMBank) Balance(i int) (int64, error) {
	o, err := b.account(i)
	if err != nil {
		return 0, err
	}
	return o.ReadInt64(0), nil
}

// Transfer implements Bank: both balance updates commit atomically in one
// failure-atomic block. A self-transfer is a no-op (reading both balances
// through the redo view and writing them back would otherwise double-apply
// to the same slot).
func (b *JNVMBank) Transfer(from, to int, amount int64) error {
	if from == to {
		if from < 0 || from >= b.n {
			return fmt.Errorf("tpcb: account %d out of range", from)
		}
		return nil
	}
	fo, err := b.account(from)
	if err != nil {
		return err
	}
	to2, err := b.account(to)
	if err != nil {
		return err
	}
	s1, s2 := from%len(b.stripes), to%len(b.stripes)
	if s1 > s2 {
		s1, s2 = s2, s1
	}
	b.stripes[s1].Lock()
	defer b.stripes[s1].Unlock()
	if s2 != s1 {
		b.stripes[s2].Lock()
		defer b.stripes[s2].Unlock()
	}
	return b.mgr.Run(func(tx *fa.Tx) error {
		fb, err := tx.ReadInt64(fo, 0)
		if err != nil {
			return err
		}
		tb, err := tx.ReadInt64(to2, 0)
		if err != nil {
			return err
		}
		if err := tx.WriteInt64(fo, 0, fb-amount); err != nil {
			return err
		}
		return tx.WriteInt64(to2, 0, tb+amount)
	})
}

// ---- Volatile bank ----

// VolatileBank keeps balances in DRAM only; after a crash it restarts
// blank and recreates accounts on demand with zero balances, as in the
// paper's Volatile configuration.
type VolatileBank struct {
	mu       sync.Mutex
	balances map[int]int64
	n        int
}

// NewVolatileBank creates an empty volatile bank.
func NewVolatileBank(accounts int) *VolatileBank {
	return &VolatileBank{balances: make(map[int]int64), n: accounts}
}

// Accounts implements Bank.
func (b *VolatileBank) Accounts() int { return b.n }

// Balance implements Bank.
func (b *VolatileBank) Balance(i int) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.balances[i], nil
}

// Transfer implements Bank.
func (b *VolatileBank) Transfer(from, to int, amount int64) error {
	b.mu.Lock()
	b.balances[from] -= amount
	b.balances[to] += amount
	b.mu.Unlock()
	return nil
}

// ---- FS bank ----

// FSBank stores each account as a marshalled record file behind the grid
// with a 10% cache, the paper's FS configuration. Restart reloads 10% of
// the accounts eagerly, which is what makes FS the slowest line of
// Figure 11.
type FSBank struct {
	g *store.Grid
	n int
}

// OpenFSBank creates or reopens the bank under dir. cacheRatio is the
// fraction of accounts kept in the volatile cache.
func OpenFSBank(dir string, accounts int, cacheRatio float64) (*FSBank, error) {
	backend, err := store.NewFSBackend(dir, false)
	if err != nil {
		return nil, err
	}
	g := store.NewGrid(backend, store.Options{CacheEntries: int(cacheRatio * float64(accounts))})
	b := &FSBank{g: g, n: accounts}
	if backend.Count() == 0 {
		pad := make([]byte, AccountSize-8)
		for i := 0; i < accounts; i++ {
			rec := &store.Record{Fields: []store.Field{
				{Name: "balance", Value: make([]byte, 8)},
				{Name: "pad", Value: pad},
			}}
			if err := g.Insert(accountKey(i), rec); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// WarmCache eagerly reloads up to n accounts into the volatile cache, the
// post-restart reload the paper measures ("Infinispan reloads 10% of the
// accounts from NVMM").
func (b *FSBank) WarmCache(n int) error {
	for i := 0; i < n && i < b.n; i++ {
		if err := b.g.Read(accountKey(i), func(string, []byte) {}); err != nil {
			return err
		}
	}
	return nil
}

func accountKey(i int) string { return fmt.Sprintf("acct%09d", i) }

// Accounts implements Bank.
func (b *FSBank) Accounts() int { return b.n }

// Balance implements Bank.
func (b *FSBank) Balance(i int) (int64, error) {
	var bal int64
	err := b.g.Read(accountKey(i), func(name string, val []byte) {
		if name == "balance" {
			bal = decodeBalance(val)
		}
	})
	return bal, err
}

func decodeBalance(v []byte) int64 {
	var x uint64
	for i := 0; i < 8 && i < len(v); i++ {
		x |= uint64(v[i]) << (8 * i)
	}
	return int64(x)
}

func encodeBalance(b int64) []byte {
	v := make([]byte, 8)
	for i := 0; i < 8; i++ {
		v[i] = byte(uint64(b) >> (8 * i))
	}
	return v
}

// Transfer implements Bank (two read-modify-writes; the FS backend has no
// cross-record atomicity, matching the Infinispan file store).
func (b *FSBank) Transfer(from, to int, amount int64) error {
	if err := b.g.ReadModifyWrite(accountKey(from), func(rec *store.Record) []store.Field {
		v, _ := rec.Get("balance")
		return []store.Field{{Name: "balance", Value: encodeBalance(decodeBalance(v) - amount)}}
	}); err != nil {
		return err
	}
	return b.g.ReadModifyWrite(accountKey(to), func(rec *store.Record) []store.Field {
		v, _ := rec.Get("balance")
		return []store.Field{{Name: "balance", Value: encodeBalance(decodeBalance(v) + amount)}}
	})
}
