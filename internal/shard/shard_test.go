package shard

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fa"
	"repro/internal/heap"
	"repro/internal/nvm"
	"repro/internal/pdt"
	"repro/internal/store"
)

func testConfig(par int) Config {
	return Config{
		HeapOptions: heap.Options{LogSlots: 16, LogSlotSize: 1 << 14},
		Classes:     func() []*core.Class { return append(pdt.Classes(), store.Classes()...) },
		Parallelism: par,
		NewBackend: func(h *core.Heap, mgr *fa.Manager) (store.Backend, error) {
			return store.NewJPDTBackend(h, "kv")
		},
	}
}

func jpfaConfig(par int) Config {
	cfg := testConfig(par)
	cfg.NewBackend = func(h *core.Heap, mgr *fa.Manager) (store.Backend, error) {
		return store.NewJPFABackend(h, mgr, "kv")
	}
	return cfg
}

func newPools(n int, bytes int) []*nvm.Pool {
	ps := make([]*nvm.Pool, n)
	for i := range ps {
		ps[i] = nvm.New(bytes, nvm.Options{})
	}
	return ps
}

func rec(v string) *store.Record {
	return &store.Record{Fields: []store.Field{{Name: "field0", Value: []byte(v)}}}
}

func readVal(t *testing.T, b store.Backend, key string) (string, bool) {
	t.Helper()
	var got string
	found, err := b.Read(key, func(name string, value []byte) { got = string(value) })
	if err != nil {
		t.Fatalf("read %q: %v", key, err)
	}
	return got, found
}

func TestShardBasicOps(t *testing.T) {
	pools := newPools(4, 4<<20)
	s, err := Open(pools, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	b := s.Backend()
	const n = 500
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("user%d", i)
		if err := b.Insert(key, rec("v"+key)); err != nil {
			t.Fatalf("insert %s: %v", key, err)
		}
	}
	if got := b.Count(); got != n {
		t.Fatalf("count %d, want %d", got, n)
	}
	// Records actually spread across pools.
	for i := 0; i < 4; i++ {
		if c := s.PoolBackend(i).Count(); c == 0 || c == n {
			t.Fatalf("pool %d holds %d of %d records — not sharded", i, c, n)
		}
	}
	// Every record routed to its jump-hash home.
	for i := 0; i < 4; i++ {
		for _, key := range s.PoolBackend(i).(store.KeyLister).Keys() {
			if home := heap.JumpHash(heap.KeyHash(key), 4); home != i {
				t.Fatalf("key %q in pool %d, home %d", key, i, home)
			}
		}
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("user%d", i)
		if got, found := readVal(t, b, key); !found || got != "v"+key {
			t.Fatalf("read %s: found=%v got=%q", key, found, got)
		}
	}
	if _, err := b.Update("user7", []store.Field{{Name: "field0", Value: []byte("upd")}}); err != nil {
		t.Fatal(err)
	}
	if got, _ := readVal(t, b, "user7"); got != "upd" {
		t.Fatalf("update not visible: %q", got)
	}
	if found, err := b.Delete("user8"); err != nil || !found {
		t.Fatalf("delete: %v found=%v", err, found)
	}
	if _, found := readVal(t, b, "user8"); found {
		t.Fatal("deleted key still readable")
	}
	if b.Count() != n-1 {
		t.Fatalf("count after delete %d", b.Count())
	}
}

func TestShardReopen(t *testing.T) {
	pools := newPools(3, 4<<20)
	s, err := Open(pools, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	b := s.Backend()
	for i := 0; i < 200; i++ {
		if err := b.Insert(fmt.Sprintf("k%d", i), rec(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.DrainDurable()

	re, err := Open(pools, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	rb := re.Backend()
	if rb.Count() != 200 {
		t.Fatalf("reopened count %d", rb.Count())
	}
	for i := 0; i < 200; i++ {
		if got, found := readVal(t, rb, fmt.Sprintf("k%d", i)); !found || got != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d: found=%v got=%q", i, found, got)
		}
	}
	if re.Epoch() != 1 || re.Migrating() {
		t.Fatalf("epoch %d migrating %v after clean reopen", re.Epoch(), re.Migrating())
	}
	if re.Recovery.LiveObjects == 0 {
		t.Fatal("merged recovery stats report no live objects")
	}
}

// TestShardRecoveryOracle cross-checks shard-parallel recovery against
// the serial §4.1.3 oracle: the same images opened with parallelism 1
// and 8 must expose identical data.
func TestShardRecoveryOracle(t *testing.T) {
	pools := newPools(4, 4<<20)
	s, err := Open(pools, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	b := s.Backend()
	for i := 0; i < 300; i++ {
		if err := b.Insert(fmt.Sprintf("u%d", i), rec(fmt.Sprintf("x%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i += 3 {
		if _, err := b.Delete(fmt.Sprintf("u%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	s.DrainDurable()

	clone := func() []*nvm.Pool {
		cs := make([]*nvm.Pool, len(pools))
		for i, p := range pools {
			c := nvm.New(int(p.Size()), nvm.Options{})
			c.WriteBytes(0, p.ReadBytes(0, p.Size()))
			cs[i] = c
		}
		return cs
	}

	serial, err := Open(clone(), testConfig(1))
	if err != nil {
		t.Fatalf("serial open: %v", err)
	}
	parallel, err := Open(clone(), testConfig(8))
	if err != nil {
		t.Fatalf("parallel open: %v", err)
	}
	sb, pb := serial.Backend(), parallel.Backend()
	if sb.Count() != pb.Count() {
		t.Fatalf("serial count %d != parallel %d", sb.Count(), pb.Count())
	}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("u%d", i)
		sv, sf := readVal(t, sb, key)
		pv, pf := readVal(t, pb, key)
		if sf != pf || sv != pv {
			t.Fatalf("%s: serial (%v,%q) != parallel (%v,%q)", key, sf, sv, pf, pv)
		}
		if wantFound := i%3 != 0; sf != wantFound {
			t.Fatalf("%s: found=%v want %v", key, sf, wantFound)
		}
	}
	if serial.Recovery != parallel.Recovery {
		t.Fatalf("recovery stats diverge: serial %+v parallel %+v", serial.Recovery, parallel.Recovery)
	}
}

func TestAddPoolMigratesRecords(t *testing.T) {
	for _, async := range []bool{false, true} {
		t.Run(fmt.Sprintf("async=%v", async), func(t *testing.T) {
			pools := newPools(2, 4<<20)
			s, err := Open(pools, testConfig(1))
			if err != nil {
				t.Fatal(err)
			}
			b := s.Backend()
			const n = 400
			for i := 0; i < n; i++ {
				if err := b.Insert(fmt.Sprintf("user%d", i), rec(fmt.Sprintf("v%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			epoch0 := s.Epoch()

			m, err := s.AddPool(nvm.New(4<<20, nvm.Options{}), AddOptions{Async: async})
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Wait(); err != nil {
				t.Fatal(err)
			}
			if s.Pools() != 3 {
				t.Fatalf("pools %d", s.Pools())
			}
			if s.Migrating() {
				t.Fatal("still migrating after Wait")
			}
			if s.Epoch() <= epoch0 {
				t.Fatalf("epoch did not advance: %d -> %d", epoch0, s.Epoch())
			}
			if b.Count() != n {
				t.Fatalf("count %d after migration, want %d", b.Count(), n)
			}
			// Every record must now sit in its 3-pool home.
			for i := 0; i < 3; i++ {
				for _, key := range s.PoolBackend(i).(store.KeyLister).Keys() {
					if home := heap.JumpHash(heap.KeyHash(key), 3); home != i {
						t.Fatalf("key %q left in pool %d, home %d", key, i, home)
					}
				}
			}
			if c := s.PoolBackend(2).Count(); c == 0 {
				t.Fatal("new pool received no records")
			}
			if s.Obs().MigratedRecords.Load() == 0 {
				t.Fatal("no migrations counted")
			}
			for i := 0; i < n; i++ {
				key := fmt.Sprintf("user%d", i)
				if got, found := readVal(t, b, key); !found || got != fmt.Sprintf("v%d", i) {
					t.Fatalf("%s after migration: found=%v got=%q", key, found, got)
				}
			}
		})
	}
}

// TestAddPoolSingleToMulti grows a table-less single-pool set (the
// byte-compatible default) into a 2-pool set online.
func TestAddPoolSingleToMulti(t *testing.T) {
	pools := newPools(1, 4<<20)
	s, err := Open(pools, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	b := s.Backend()
	for i := 0; i < 100; i++ {
		if err := b.Insert(fmt.Sprintf("k%d", i), rec("v")); err != nil {
			t.Fatal(err)
		}
	}
	m, err := s.AddPool(nvm.New(4<<20, nvm.Options{}), AddOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	if b.Count() != 100 {
		t.Fatalf("count %d", b.Count())
	}
	if s.PoolBackend(1).Count() == 0 {
		t.Fatal("no records moved to the new pool")
	}
	// Reopen as a 2-pool set.
	s.DrainDurable()
	re, err := Open(append(pools, nvmOf(s, 1)), testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if re.Backend().Count() != 100 {
		t.Fatalf("reopened count %d", re.Backend().Count())
	}
}

func nvmOf(s *Set, i int) *nvm.Pool { return s.topo.Load().pools[i] }

// TestPoolFullFallback fills a record's home pool and verifies the
// insert degrades to a ring-probe fallback instead of failing, that the
// record stays readable, and that the sticky flag survives reopen.
func TestPoolFullFallback(t *testing.T) {
	// Tiny pool 0, roomy pool 1: fill pool 0's arena.
	pools := []*nvm.Pool{
		nvm.New(192<<10, nvm.Options{}),
		nvm.New(4<<20, nvm.Options{}),
	}
	cfg := testConfig(1)
	cfg.HeapOptions = heap.Options{LogSlots: 4, LogSlotSize: 1 << 12}
	s, err := Open(pools, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := s.Backend()

	// Find keys homed on pool 0 and insert until one falls back.
	var homed []string
	for i := 0; len(homed) < 400; i++ {
		key := fmt.Sprintf("fill%d", i)
		if heap.JumpHash(heap.KeyHash(key), 2) == 0 {
			homed = append(homed, key)
		}
	}
	inserted := []string{}
	for _, key := range homed {
		if err := b.Insert(key, rec("payload-"+key)); err != nil {
			t.Fatalf("insert %s: %v", key, err)
		}
		inserted = append(inserted, key)
		if s.Obs().FallbackInserts.Load() > 2 {
			break
		}
	}
	fb := s.Obs().FallbackInserts.Load()
	if fb == 0 {
		t.Fatal("pool 0 never filled — grow the key set or shrink the pool")
	}
	for _, key := range inserted {
		if got, found := readVal(t, b, key); !found || got != "payload-"+key {
			t.Fatalf("%s unreadable after fallback era: found=%v got=%q", key, found, got)
		}
	}
	// Updates and deletes must find off-home records too.
	last := inserted[len(inserted)-1]
	if found, err := b.Update(last, []store.Field{{Name: "field0", Value: []byte("u2")}}); err != nil || !found {
		t.Fatalf("update fallback record: %v found=%v", err, found)
	}
	if got, _ := readVal(t, b, last); got != "u2" {
		t.Fatalf("fallback update lost: %q", got)
	}

	// The sticky flag must survive a crashless reopen: every record still
	// reachable with no migration having run.
	s.DrainDurable()
	re, err := Open(pools, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rb := re.Backend()
	for _, key := range inserted {
		if _, found := readVal(t, rb, key); !found {
			t.Fatalf("%s lost across reopen", key)
		}
	}
	// And a migration re-homes the strays.
	m, err := re.AddPool(nvm.New(4<<20, nvm.Options{}), AddOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for _, key := range re.PoolBackend(i).(store.KeyLister).Keys() {
			if home := heap.JumpHash(heap.KeyHash(key), 3); home != i {
				t.Fatalf("key %q still off-home after migration (pool %d, home %d)", key, i, home)
			}
		}
	}
}

// TestFreelistExhaustionRacesAddPool churns inserts and deletes hard
// enough to cycle the freelist while a pool addition migrates records
// underneath — the -race build checks the gate, and the final state
// must match each goroutine's model exactly.
func TestFreelistExhaustionRacesAddPool(t *testing.T) {
	pools := newPools(2, 2<<20)
	s, err := Open(pools, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	b := s.Backend()

	const workers, perWorker = 4, 120
	var wg sync.WaitGroup
	alive := make([]map[string]string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := map[string]string{}
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				val := fmt.Sprintf("w%d-v%d", w, i)
				if err := b.Insert(key, rec(val)); err != nil {
					if errors.Is(err, heap.ErrOutOfMemory) {
						continue
					}
					t.Errorf("insert %s: %v", key, err)
					return
				}
				mine[key] = val
				if i%3 == 0 && i > 0 {
					victim := fmt.Sprintf("w%d-k%d", w, i-1)
					if _, err := b.Delete(victim); err != nil {
						t.Errorf("delete %s: %v", victim, err)
						return
					}
					delete(mine, victim)
				}
			}
			alive[w] = mine
		}(w)
	}

	m, err := s.AddPool(nvm.New(2<<20, nvm.Options{}), AddOptions{Async: true, Pacer: &Pacer{BytesPerSec: 64 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}

	total := 0
	for w := 0; w < workers; w++ {
		for key, want := range alive[w] {
			got, found := readVal(t, b, key)
			if !found || got != want {
				t.Fatalf("%s: found=%v got=%q want %q", key, found, got, want)
			}
			total++
		}
	}
	if c := b.Count(); c != total {
		t.Fatalf("count %d, model %d", c, total)
	}
}

// TestTransientReuseAcrossPools drives delete/insert churn over every
// pool concurrently (JPFA allocates raw log blocks through the
// transient pools) and checks each pool recycles only its own blocks.
func TestTransientReuseAcrossPools(t *testing.T) {
	pools := newPools(3, 4<<20)
	s, err := Open(pools, jpfaConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	b := s.Backend()
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 80; i++ {
				key := fmt.Sprintf("c%d-%d", w, i)
				if err := b.Insert(key, rec("v")); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if _, err := b.Delete(key); err != nil {
					t.Errorf("delete: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if b.Count() != 0 {
		t.Fatalf("count %d after churn", b.Count())
	}
	// Churn reached every pool and block recycling happened somewhere;
	// per-pool bump high-waters stay bounded because freed blocks are
	// reused, not bumped fresh.
	snap := s.Snapshot()
	reuse := uint64(0)
	for _, p := range snap.PerPool {
		if p.Heap.ObjAllocs == 0 {
			t.Fatalf("pool %d saw no allocations", p.Index)
		}
		reuse += p.Heap.ReuseAllocs + p.Heap.TransientReuse
	}
	if reuse == 0 {
		t.Fatal("churn recycled no blocks in any pool")
	}
}

// TestSnapshotPerPoolSums verifies Set.Snapshot's per-pool entries sum
// to the direct per-layer totals.
func TestSnapshotPerPoolSums(t *testing.T) {
	pools := newPools(4, 4<<20)
	s, err := Open(pools, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	b := s.Backend()
	for i := 0; i < 300; i++ {
		if err := b.Insert(fmt.Sprintf("k%d", i), rec("v")); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	if len(snap.PerPool) != 4 {
		t.Fatalf("per-pool entries %d", len(snap.PerPool))
	}
	var sumAllocs, sumPWBs, sumBump uint64
	for _, p := range snap.PerPool {
		sumAllocs += p.Heap.ObjAllocs
		sumPWBs += p.NVM.PWBs
		sumBump += p.Heap.Bump
	}
	var wantAllocs, wantPWBs, wantBump uint64
	for i := 0; i < 4; i++ {
		wantAllocs += s.Heap(i).Mem().Obs().ObjAllocs.Load()
		wantPWBs += s.topo.Load().pools[i].Obs().PWBs.Load()
		bump, _, _ := s.Heap(i).Mem().Stats()
		wantBump += bump
	}
	if sumAllocs != wantAllocs || sumPWBs != wantPWBs || sumBump != wantBump {
		t.Fatalf("per-pool sums (%d,%d,%d) != layer totals (%d,%d,%d)",
			sumAllocs, sumPWBs, sumBump, wantAllocs, wantPWBs, wantBump)
	}
}

// TestLockFreeShardCapability checks the capability-mirroring wrapper
// selection: lock-free children produce a lock-free sharded backend,
// and the grid drives it end to end.
func TestLockFreeShardCapability(t *testing.T) {
	cfg := testConfig(1)
	cfg.NewBackend = func(h *core.Heap, mgr *fa.Manager) (store.Backend, error) {
		return store.NewJPDTLFBackend(h, "kv")
	}
	s, err := Open(newPools(2, 4<<20), cfg)
	if err != nil {
		t.Fatal(err)
	}
	be := s.Backend()
	if _, ok := be.(store.LockFreeBackend); !ok {
		t.Fatalf("lock-free children produced %T", be)
	}
	g := store.NewGrid(be, store.Options{})
	if err := g.Insert("a", rec("1")); err != nil {
		t.Fatal(err)
	}
	var got string
	if err := g.Read("a", func(name string, v []byte) { got = string(v) }); err != nil || got != "1" {
		t.Fatalf("grid read: %v %q", err, got)
	}

	// J-PDT children produce a view-reading wrapper instead.
	s2, err := Open(newPools(2, 4<<20), testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	be2 := s2.Backend()
	if _, ok := be2.(store.ViewReader); !ok {
		t.Fatalf("view-reader children produced %T", be2)
	}
	if _, ok := be2.(store.LockFreeBackend); ok {
		t.Fatal("J-PDT shard claims lock freedom")
	}
	g2 := store.NewGrid(be2, store.Options{})
	if err := g2.Insert("b", rec("2")); err != nil {
		t.Fatal(err)
	}
	var got2 string
	if err := g2.Read("b", func(name string, v []byte) { got2 = string(v) }); err != nil || got2 != "2" {
		t.Fatalf("grid zero-copy read: %v %q", err, got2)
	}
}
