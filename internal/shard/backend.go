package shard

import (
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/heap"
	"repro/internal/obs"
	"repro/internal/store"
)

// Backend returns the set's grid backend. The wrapper type mirrors the
// children's capabilities, because the grid picks its read path by type
// assertion: if every pool's backend is lock-free the sharded backend
// is too; if every one serves zero-copy views so does the shard; else
// the plain locked wrapper.
func (s *Set) Backend() store.Backend {
	t := s.topo.Load()
	lf, vr := true, true
	for _, b := range t.backends {
		if _, ok := b.(store.LockFreeBackend); !ok {
			lf = false
		}
		if _, ok := b.(store.ViewReader); !ok {
			vr = false
		}
	}
	base := shardBackend{s: s}
	switch {
	case lf:
		return &lfShardBackend{base}
	case vr:
		return &viewShardBackend{base}
	default:
		return &base
	}
}

// shardBackend routes grid operations to per-pool backends. Reads are
// lock-free; writes pass the migration gate (one counter bump and one
// flag load when no migration is running).
type shardBackend struct{ s *Set }

// Name implements store.Backend.
func (b *shardBackend) Name() string { return b.s.topo.Load().backends[0].Name() + "×shard" }

// home returns the insert-world pool for hash: targetN during a
// migration (record placement never has to be redone), nPools otherwise.
func home(hash uint64, target int) int { return heap.JumpHash(hash, target) }

// Insert implements store.Backend: route to the home pool of the
// insert world; on arena exhaustion, persist the sticky fallback flag
// and ring-probe the remaining pools so a full pool degrades instead of
// failing the workload.
func (b *shardBackend) Insert(key string, rec *store.Record) error {
	s := b.s
	hash := heap.KeyHash(key)
	gate := s.beginWrite(hash)
	defer s.endWrite(gate)
	t := s.topo.Load()
	_, _, target, _, _ := s.loadWorld()
	h := home(hash, target)
	err := t.backends[h].Insert(key, rec)
	if err == nil || !errIsOOM(err) {
		return err
	}
	for i := 1; i < len(t.backends); i++ {
		p := (h + i) % len(t.backends)
		// The flag must be durable before the off-home record exists,
		// or a crash could strand it where no probe ever looks.
		if ferr := s.noteFallback(); ferr != nil {
			return err
		}
		if ierr := t.backends[p].Insert(key, rec); ierr == nil {
			s.stats.FallbackInserts.Inc()
			return nil
		} else if !errIsOOM(ierr) {
			return ierr
		}
	}
	return err
}

// probe calls fn over the candidate pools in probe order — home in the
// insert world, then home in the committed world while they differ,
// then everywhere if off-home records may exist — until fn reports a
// hit. It reports whether fn ever hit.
func (b *shardBackend) probe(hash uint64, fn func(p int) (bool, error)) (bool, error) {
	s := b.s
	t := s.topo.Load()
	_, n, target, migrating, fallback := s.loadWorld()
	h := home(hash, target)
	found, err := fn(h)
	if found || err != nil {
		return found, err
	}
	if n != target {
		s.stats.ProbeMisses.Inc()
		if found, err = fn(heap.JumpHash(hash, n)); found || err != nil {
			return found, err
		}
	}
	if fallback || migrating {
		old := heap.JumpHash(hash, n)
		for p := range t.backends {
			if p == h || (n != target && p == old) {
				continue
			}
			s.stats.ProbeMisses.Inc()
			if found, err = fn(p); found || err != nil {
				return found, err
			}
		}
	}
	return false, nil
}

// Read implements store.Backend. During a migration a record can be
// mid-flight between its copy landing in the new pool and the old copy
// dying, so a full miss while migrating is retried once — the second
// pass must see one of the two copies.
func (b *shardBackend) Read(key string, consume func(name string, value []byte)) (bool, error) {
	s := b.s
	hash := heap.KeyHash(key)
	t := s.topo.Load()
	if len(t.backends) == 1 {
		return t.backends[0].Read(key, consume)
	}
	found, err := b.probe(hash, func(p int) (bool, error) {
		return s.topo.Load().backends[p].Read(key, consume)
	})
	if !found && err == nil && s.Migrating() {
		found, err = b.probe(hash, func(p int) (bool, error) {
			return s.topo.Load().backends[p].Read(key, consume)
		})
	}
	return found, err
}

// Update implements store.Backend: first probed pool holding the key
// wins. Writers hold the stripe lock while a migration runs, so the
// record cannot move between the probe and the update.
func (b *shardBackend) Update(key string, fields []store.Field) (bool, error) {
	s := b.s
	hash := heap.KeyHash(key)
	gate := s.beginWrite(hash)
	defer s.endWrite(gate)
	t := s.topo.Load()
	if len(t.backends) == 1 {
		return t.backends[0].Update(key, fields)
	}
	return b.probe(hash, func(p int) (bool, error) {
		return t.backends[p].Update(key, fields)
	})
}

// Delete implements store.Backend.
func (b *shardBackend) Delete(key string) (bool, error) {
	s := b.s
	hash := heap.KeyHash(key)
	gate := s.beginWrite(hash)
	defer s.endWrite(gate)
	t := s.topo.Load()
	if len(t.backends) == 1 {
		return t.backends[0].Delete(key)
	}
	return b.probe(hash, func(p int) (bool, error) {
		return t.backends[p].Delete(key)
	})
}

// Count implements store.Backend.
func (b *shardBackend) Count() int {
	n := 0
	for _, c := range b.s.topo.Load().backends {
		n += c.Count()
	}
	return n
}

// Close implements store.Backend.
func (b *shardBackend) Close() error { return b.s.Close() }

// Keys implements store.KeyLister: the merged, sorted key set.
func (b *shardBackend) Keys() []string {
	var all []string
	for _, c := range b.s.topo.Load().backends {
		all = append(all, c.(store.KeyLister).Keys()...)
	}
	sort.Strings(all)
	return all
}

// viewShardBackend adds zero-copy view reads when every pool serves
// them (J-PDT): the grid's seqlock protocol is unchanged — each child
// revalidates the caller's generation itself, so the first child that
// reports found-and-valid delivered a write-free snapshot.
type viewShardBackend struct{ shardBackend }

// EnableViewReads implements store.ViewReader.
func (b *viewShardBackend) EnableViewReads(rs *obs.ReadStats) {
	b.s.viewRS.Store(rs)
	for _, c := range b.s.topo.Load().backends {
		c.(store.ViewReader).EnableViewReads(rs)
	}
}

// ReadView implements store.ViewReader by probing pools in home order.
func (b *viewShardBackend) ReadView(key string, hint uint32, gen *atomic.Uint64, g1 uint64,
	consume func(name string, value []byte)) (found, valid, ok bool) {
	s := b.s
	t := s.topo.Load()
	if len(t.backends) == 1 {
		return t.backends[0].(store.ViewReader).ReadView(key, hint, gen, g1, consume)
	}
	hash := heap.KeyHash(key)
	valid, ok = true, true
	f, err := b.probe(hash, func(p int) (bool, error) {
		pf, pv, pok := t.backends[p].(store.ViewReader).ReadView(key, hint, gen, g1, consume)
		if !pv || !pok {
			// Generation race or a shape the unlocked reader cannot
			// handle: stop probing and let the grid retry or fall back.
			valid, ok = pv, pok
			return true, nil
		}
		return pf, nil
	})
	_ = err // probe closures above never return one
	return f && valid && ok, valid, ok
}

// lfShardBackend marks the set lock-free when every pool is: the grid
// then skips its stripe locks entirely, and per-key exclusion during
// migration comes from the set's own write gate.
type lfShardBackend struct{ shardBackend }

// EnableLockFree implements store.LockFreeBackend.
func (b *lfShardBackend) EnableLockFree(rs *obs.ReadStats) {
	b.s.lfRS.Store(rs)
	for _, c := range b.s.topo.Load().backends {
		c.(store.LockFreeBackend).EnableLockFree(rs)
	}
}

// Pacer is the obs-driven throttle for the background migrator: it
// watches the live MigratedBytes counter and sleeps whenever the
// observed migration rate runs ahead of BytesPerSec, so rebalancing
// yields bandwidth to foreground traffic.
type Pacer struct {
	BytesPerSec int

	start time.Time
	base  uint64
}

func (p *Pacer) pace(stats *obs.ShardStats) {
	if p.BytesPerSec <= 0 {
		return
	}
	if p.start.IsZero() {
		p.start = time.Now()
		p.base = stats.MigratedBytes.Load()
		return
	}
	moved := stats.MigratedBytes.Load() - p.base
	ahead := time.Duration(moved)*time.Second/time.Duration(p.BytesPerSec) - time.Since(p.start)
	if ahead > time.Millisecond {
		stats.PacerWaits.Inc()
		time.Sleep(ahead)
	}
}
