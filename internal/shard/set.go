// Package shard implements the multi-pool NVMM heap of DESIGN.md §17: a
// set of fully independent per-pool stacks (nvm pool, block heap,
// object heap, redo-log manager, grid backend) with record routing by
// jump consistent hashing, shard-parallel recovery with an ordered
// merge, online pool addition through a persisted epoch table mutated
// under J-PFA transactions, and a crash-safe record migrator.
//
// Refs are pool-local offsets, so nothing persistent ever crosses a
// pool boundary; the only shared persistent state is the epoch table,
// a pdt.PLongArray bound to the root name "shard.epoch" in pool 0.
// Single-pool sets never create the table — a pre-sharding image is a
// valid 1-pool set byte for byte, and a 1-pool set writes nothing a
// pre-sharding build could not read.
package shard

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fa"
	"repro/internal/heap"
	"repro/internal/nvm"
	"repro/internal/obs"
	"repro/internal/pdt"
	"repro/internal/store"
)

// EpochRoot is the root-map name of the epoch table in pool 0.
const EpochRoot = "shard.epoch"

// Epoch table slots. The table is a pdt.PLongArray of epochSlots longs;
// topology transitions write it inside one failure-atomic block so the
// routing world flips atomically across a crash.
const (
	epEpoch     = 0 // topology generation, bumped by every finalized change
	epNPools    = 1 // committed routing world (reads may still probe here)
	epTargetN   = 2 // routing world for inserts; != epNPools while migrating
	epMigrating = 3 // 1 while a migration is underway
	epFallback  = 4 // sticky: some record may live off its home pool
	epochSlots  = 8 // headroom for future topology state
)

const gateStripes = 64

// Config parameterizes Open.
type Config struct {
	// HeapOptions formats each pool that is not already a heap. Pool
	// index/count are filled in per pool by the set.
	HeapOptions heap.Options
	// Classes builds the class descriptors for one pool's object heap —
	// a factory, not a shared slice, because descriptors carry a
	// per-heap id. The result must include pdt.Classes() (the epoch
	// table is a PLongArray) and the classes of whatever NewBackend
	// stores.
	Classes func() []*core.Class
	// Parallelism is the total recovery worker budget, split evenly
	// across pools (each pool gets at least 1; 0 means GOMAXPROCS).
	// Parallelism 1 with a single pool is the serial §4.1.3 oracle.
	Parallelism int
	// NewBackend builds one pool's grid backend over its freshly
	// recovered stack (the same constructor bench uses per backend kind).
	NewBackend func(h *core.Heap, mgr *fa.Manager) (store.Backend, error)
}

// topo is the immutable pool roster; AddPool swaps in a copy so the
// lock-free read path can load it with a single atomic pointer read.
type topo struct {
	pools    []*nvm.Pool
	heaps    []*core.Heap
	mgrs     []*fa.Manager
	backends []store.Backend
}

// Set is an open multi-pool heap.
type Set struct {
	mu   sync.Mutex // serializes topology changes
	fbMu sync.Mutex // serializes the sticky fallback-flag transaction
	cfg  Config

	topo atomic.Pointer[topo]

	// world packs the routing state for one-atomic-load decoding on the
	// hot path: epoch<<40 | nPools<<24 | targetN<<8 | migrating<<1 | fb.
	world atomic.Uint64

	epochArr *pdt.PLongArray // nil while the set is a table-less single pool

	// Write gate (only engaged while migrating): writers count themselves
	// in inflight; once locking is set they divert to per-key stripe
	// locks instead, and the migrator quiesces by waiting for inflight to
	// drain once. Reads stay lock-free throughout.
	locking  atomic.Bool
	inflight atomic.Int64
	stripes  [gateStripes]sync.Mutex

	// capability wiring replayed onto pools added later
	viewRS atomic.Pointer[obs.ReadStats]
	lfRS   atomic.Pointer[obs.ReadStats]

	stats obs.ShardStats

	// Recovery is the ordered merge of every pool's recovery stats.
	Recovery core.RecoveryStats
}

func packWorld(epoch uint64, n, target int, migrating, fallback bool) uint64 {
	w := epoch<<40 | uint64(n)<<24 | uint64(target)<<8
	if migrating {
		w |= 2
	}
	if fallback {
		w |= 1
	}
	return w
}

func (s *Set) loadWorld() (epoch uint64, n, target int, migrating, fallback bool) {
	w := s.world.Load()
	return w >> 40, int(w >> 24 & 0xffff), int(w >> 8 & 0xffff), w&2 != 0, w&1 != 0
}

// storeWorld publishes a new routing world, preserving the fallback bit
// against a concurrent noteFallback (the only other world writer; all
// topology transitions hold s.mu).
func (s *Set) storeWorld(epoch uint64, n, target int, migrating bool) {
	for {
		w := s.world.Load()
		nw := packWorld(epoch, n, target, migrating, w&1 != 0)
		if s.world.CompareAndSwap(w, nw) {
			return
		}
	}
}

// Open attaches to (or formats) every pool concurrently, recovers each
// with an even share of the worker budget, merges the recovery stats in
// pool-index order, and replays any migration a crash interrupted —
// synchronously, before any traffic can observe the set.
func Open(pools []*nvm.Pool, cfg Config) (*Set, error) {
	n := len(pools)
	if n == 0 {
		return nil, fmt.Errorf("shard: no pools")
	}
	if cfg.NewBackend == nil {
		return nil, fmt.Errorf("shard: Config.NewBackend is required")
	}
	per := core.RecoverOptions{Parallelism: cfg.Parallelism}.Workers() / n
	if per < 1 {
		per = 1
	}

	heaps := make([]*core.Heap, n)
	mgrs := make([]*fa.Manager, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range pools {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mgr := fa.NewManager()
			ho := cfg.HeapOptions
			ho.PoolIndex, ho.PoolCount = i, n
			h, err := core.Open(pools[i], core.Config{
				HeapOptions: ho,
				Classes:     cfg.Classes(),
				LogHandler:  mgr,
				Recover:     core.RecoverOptions{Parallelism: per},
			})
			if err != nil {
				errs[i] = fmt.Errorf("shard: pool %d: %w", i, err)
				return
			}
			heaps[i], mgrs[i] = h, mgr
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Validate the roster against each pool's superblock position.
	mems := make([]*heap.Heap, n)
	for i, h := range heaps {
		mems[i] = h.Mem()
	}
	if _, err := heap.NewPoolSet(mems); err != nil {
		return nil, err
	}

	s := &Set{cfg: cfg}
	t := &topo{pools: pools, heaps: heaps, mgrs: mgrs}
	s.topo.Store(t)

	// Ordered merge of per-pool recovery stats.
	s.Recovery = heaps[0].RecoveryStats
	for _, h := range heaps[1:] {
		s.Recovery.Merge(h.RecoveryStats)
	}

	// Read (or create) the epoch table in pool 0.
	epoch, routeN, targetN := uint64(1), n, n
	migrating, fallback := false, false
	po, err := heaps[0].Root().Get(EpochRoot)
	if err != nil {
		return nil, fmt.Errorf("shard: epoch table: %w", err)
	}
	switch {
	case po != nil:
		arr, ok := po.(*pdt.PLongArray)
		if !ok {
			return nil, fmt.Errorf("shard: root %q is not a long array", EpochRoot)
		}
		s.epochArr = arr
		epoch = uint64(arr.Get(epEpoch))
		routeN = int(arr.Get(epNPools))
		targetN = int(arr.Get(epTargetN))
		migrating = arr.Get(epMigrating) != 0
		fallback = arr.Get(epFallback) != 0
		if targetN > n || routeN > n {
			return nil, fmt.Errorf("shard: epoch table expects %d pools (target %d) but %d were opened",
				routeN, targetN, n)
		}
		if !migrating && targetN < n {
			// A pool was formatted but its addition never became durable
			// (crash between format and the topology transaction). The
			// extra pools hold no routed data; keep routing by the table.
			n = targetN
		}
	case n > 1:
		// First multi-pool open of freshly formatted pools.
		arr, err := pdt.NewLongArray(heaps[0], epochSlots)
		if err != nil {
			return nil, fmt.Errorf("shard: epoch table: %w", err)
		}
		arr.Set(epEpoch, 1)
		arr.Set(epNPools, int64(n))
		arr.Set(epTargetN, int64(n))
		arr.Flush()
		if err := heaps[0].Root().Put(EpochRoot, arr); err != nil {
			return nil, fmt.Errorf("shard: epoch table: %w", err)
		}
		s.epochArr = arr
	default:
		// Single pool: no table — byte-compatible with pre-sharding images.
	}
	s.world.Store(packWorld(epoch, routeN, targetN, migrating, fallback))

	// Build the per-pool backends (serially: constructors may rebuild
	// volatile mirrors but are cheap relative to recovery).
	t.backends = make([]store.Backend, n)
	for i := 0; i < n; i++ {
		b, err := cfg.NewBackend(heaps[i], mgrs[i])
		if err != nil {
			return nil, fmt.Errorf("shard: pool %d backend: %w", i, err)
		}
		t.backends[i] = b
	}
	t.pools, t.heaps, t.mgrs = pools[:n], heaps[:n], mgrs[:n]

	if migrating {
		// Finish what the crash interrupted before anyone sees the set.
		// moveKey is idempotent: a key found in both pools loses its old
		// copy, a key only in its old pool is re-moved.
		s.stats.MigrationResumes.Inc()
		if err := s.migrateAll(routeN, targetN, nil); err != nil {
			return nil, fmt.Errorf("shard: resume migration: %w", err)
		}
		if err := s.finalizeMigration(targetN); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// ReadTopology reads the persisted epoch table of an (already
// recovered) pool-0 heap without opening a set around it — the fsck /
// crash-check entry point. A table-less heap reports the standalone
// topology (epoch 0, one pool, clean).
func ReadTopology(h *core.Heap) (epoch uint64, nPools, targetN int, migrating, fallback bool, err error) {
	po, err := h.Root().Get(EpochRoot)
	if err != nil {
		return 0, 0, 0, false, false, fmt.Errorf("shard: epoch table: %w", err)
	}
	if po == nil {
		return 0, 1, 1, false, false, nil
	}
	arr, ok := po.(*pdt.PLongArray)
	if !ok {
		return 0, 0, 0, false, false, fmt.Errorf("shard: root %q is not a long array", EpochRoot)
	}
	return uint64(arr.Get(epEpoch)), int(arr.Get(epNPools)), int(arr.Get(epTargetN)),
		arr.Get(epMigrating) != 0, arr.Get(epFallback) != 0, nil
}

// Pools returns the number of pools currently in the set.
func (s *Set) Pools() int { return len(s.topo.Load().pools) }

// Heap returns pool i's object heap.
func (s *Set) Heap(i int) *core.Heap { return s.topo.Load().heaps[i] }

// Manager returns pool i's redo-log manager.
func (s *Set) Manager(i int) *fa.Manager { return s.topo.Load().mgrs[i] }

// PoolBackend returns pool i's grid backend.
func (s *Set) PoolBackend(i int) store.Backend { return s.topo.Load().backends[i] }

// Epoch returns the current topology generation.
func (s *Set) Epoch() uint64 { e, _, _, _, _ := s.loadWorld(); return e }

// Migrating reports whether a migration is underway.
func (s *Set) Migrating() bool { _, _, _, m, _ := s.loadWorld(); return m }

// Obs returns the live shard counters.
func (s *Set) Obs() *obs.ShardStats { return &s.stats }

// DrainDurable drains every pool's async commit queue.
func (s *Set) DrainDurable() {
	for _, m := range s.topo.Load().mgrs {
		m.DrainDurable()
	}
}

// Close closes every pool's backend.
func (s *Set) Close() error {
	var first error
	for _, b := range s.topo.Load().backends {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Snapshot captures the shard counters, topology gauges, and the
// per-pool layer breakdown.
func (s *Set) Snapshot() obs.ShardSnapshot {
	t := s.topo.Load()
	epoch, _, _, migrating, _ := s.loadWorld()
	sn := s.stats.Snapshot()
	sn.Pools = len(t.pools)
	sn.Epoch = epoch
	sn.Migrating = migrating
	sn.PerPool = make([]obs.PoolSnapshot, len(t.pools))
	for i := range t.pools {
		p := obs.PoolSnapshot{
			Index: i,
			NVM:   t.pools[i].Obs().Snapshot(),
			Heap:  t.heaps[i].Mem().ObsSnapshot(),
			FA:    t.mgrs[i].ObsSnapshot(),
		}
		bump, free, total := t.heaps[i].Mem().Stats()
		if total > 0 {
			p.OccupancyPct = 100 * float64(bump-free) / float64(total)
		}
		sn.PerPool[i] = p
	}
	return sn
}

// ---- Write gate ----

// beginWrite announces a mutation of the record keyed by hash h and
// returns the stripe index to release, or -1 when the gate is open. The
// fast path is one counter increment and one flag load; only while a
// migration is running do writers divert to per-key stripe locks.
func (s *Set) beginWrite(h uint64) int {
	s.inflight.Add(1)
	if !s.locking.Load() {
		return -1
	}
	// Gate engaged: leave the fast-path population, then serialize
	// against the migrator on the key's stripe.
	s.inflight.Add(-1)
	idx := int(h>>32) & (gateStripes - 1)
	s.stripes[idx].Lock()
	return idx
}

func (s *Set) endWrite(idx int) {
	if idx < 0 {
		s.inflight.Add(-1)
		return
	}
	s.stripes[idx].Unlock()
}

// quiesce flips the gate on and waits out every writer that entered
// before the flip; afterwards all writers hold stripe locks and moveKey
// can rely on per-key mutual exclusion.
func (s *Set) quiesce() {
	s.locking.Store(true)
	for s.inflight.Load() != 0 {
		runtime.Gosched()
	}
}

func (s *Set) lockStripe(h uint64) func() {
	idx := int(h>>32) & (gateStripes - 1)
	s.stripes[idx].Lock()
	return s.stripes[idx].Unlock
}

// ---- Online pool addition and migration ----

// Migration is a handle on an in-flight (or completed) migration.
type Migration struct {
	done chan struct{}
	err  error
}

// Wait blocks until the migration finishes and returns its error.
func (m *Migration) Wait() error {
	<-m.done
	return m.err
}

// AddOptions tunes AddPool.
type AddOptions struct {
	// Async runs the record migration in a background goroutine (the
	// compactor); AddPool returns as soon as the new pool is a durable
	// member and inserts route to it. Wait() joins the migration.
	Async bool
	// Pacer throttles the migrator (nil = unthrottled).
	Pacer *Pacer
}

// AddPool grows the set by one pool online:
//
//  1. format + recover the pool as index n, and make the formatting
//     durable (PSync) before the table can name it;
//  2. one failure-atomic transaction in pool 0 sets targetN=n+1 and
//     migrating=1 — from here the addition survives any crash, inserts
//     route over n+1 pools, and reads probe both worlds;
//  3. the migrator walks pools 0..n-1 and moves every record whose home
//     changed (insert at destination, PSync destination, delete at
//     source — so the new copy is durable strictly before the old one
//     dies);
//  4. a final transaction sets nPools=n+1, migrating=0, epoch+1.
//
// A crash anywhere after step 2 resumes at the next Open; a crash
// before it leaves a formatted-but-unnamed pool, which is simply empty.
func (s *Set) AddPool(pool *nvm.Pool, opts AddOptions) (*Migration, error) {
	s.mu.Lock()
	t := s.topo.Load()
	_, routeN, _, migrating, _ := s.loadWorld()
	if migrating {
		s.mu.Unlock()
		return nil, fmt.Errorf("shard: a migration is already underway")
	}
	n := len(t.pools)

	// Step 1: bring the new pool up, durable, before it is named.
	mgr := fa.NewManager()
	ho := s.cfg.HeapOptions
	ho.PoolIndex, ho.PoolCount = n, n+1
	h, err := core.Open(pool, core.Config{
		HeapOptions: ho,
		Classes:     s.cfg.Classes(),
		LogHandler:  mgr,
		Recover:     core.RecoverOptions{Parallelism: 1},
	})
	if err != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("shard: add pool %d: %w", n, err)
	}
	pool.PSync()
	backend, err := s.cfg.NewBackend(h, mgr)
	if err != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("shard: add pool %d backend: %w", n, err)
	}
	// Replay grid capability wiring onto the late joiner.
	if rs := s.viewRS.Load(); rs != nil {
		backend.(store.ViewReader).EnableViewReads(rs)
	}
	if rs := s.lfRS.Load(); rs != nil {
		backend.(store.LockFreeBackend).EnableLockFree(rs)
	}

	// A single-pool set grows a table on first addition.
	if s.epochArr == nil {
		arr, err := pdt.NewLongArray(t.heaps[0], epochSlots)
		if err != nil {
			s.mu.Unlock()
			return nil, fmt.Errorf("shard: epoch table: %w", err)
		}
		arr.Set(epEpoch, 1)
		arr.Set(epNPools, int64(n))
		arr.Set(epTargetN, int64(n))
		arr.Flush()
		if err := t.heaps[0].Root().Put(EpochRoot, arr); err != nil {
			s.mu.Unlock()
			return nil, fmt.Errorf("shard: epoch table: %w", err)
		}
		s.epochArr = arr
	}

	// Step 2: the topology transaction. After this commits, the
	// addition is crash-durable and cannot roll back. fbMu keeps the
	// commit's line write-back from clobbering a concurrent direct
	// fallback-flag store (same cache line); the flag's current value is
	// re-asserted inside the transaction.
	arr := s.epochArr
	s.fbMu.Lock()
	_, _, _, _, fbNow := s.loadWorld()
	err = t.mgrs[0].Run(func(tx *fa.Tx) error {
		if err := arr.SetTx(tx, epTargetN, int64(n+1)); err != nil {
			return err
		}
		if err := arr.SetTx(tx, epMigrating, 1); err != nil {
			return err
		}
		fb := int64(0)
		if fbNow {
			fb = 1
		}
		return arr.SetTx(tx, epFallback, fb)
	})
	if err == nil {
		t.mgrs[0].DrainDurable() // async commit mode: force the epoch out
	}
	s.fbMu.Unlock()
	if err != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("shard: topology tx: %w", err)
	}

	// Publish the grown roster and the migrating world.
	nt := &topo{
		pools:    append(append([]*nvm.Pool{}, t.pools...), pool),
		heaps:    append(append([]*core.Heap{}, t.heaps...), h),
		mgrs:     append(append([]*fa.Manager{}, t.mgrs...), mgr),
		backends: append(append([]store.Backend{}, t.backends...), backend),
	}
	s.topo.Store(nt)
	s.storeWorld(uint64(arr.Get(epEpoch)), routeN, n+1, true)

	// Steps 3-4, with writers diverted to stripe locks first.
	s.quiesce()
	m := &Migration{done: make(chan struct{})}
	run := func() {
		defer s.mu.Unlock()
		defer close(m.done)
		if err := s.migrateAll(routeN, n+1, opts.Pacer); err != nil {
			m.err = err
			return
		}
		m.err = s.finalizeMigration(n + 1)
		if m.err == nil {
			s.stats.PoolAdds.Inc()
		}
	}
	if opts.Async {
		go run()
	} else {
		run()
	}
	return m, nil
}

// migrateAll walks every pre-existing pool and moves the records whose
// home pool changed under the new world. Keys are walked in sorted
// order per pool, so a resumed migration retraces the original's steps.
func (s *Set) migrateAll(oldN, newN int, pacer *Pacer) error {
	t := s.topo.Load()
	for p := 0; p < oldN; p++ {
		kl, ok := t.backends[p].(store.KeyLister)
		if !ok {
			return fmt.Errorf("shard: backend %s cannot enumerate keys", t.backends[p].Name())
		}
		for _, key := range kl.Keys() {
			hash := heap.KeyHash(key)
			dst := heap.JumpHash(hash, newN)
			if dst == p {
				continue
			}
			// dst != p also catches records parked off-home by a
			// pool-full fallback: migration re-homes them.
			if err := s.moveKey(t, key, hash, p, dst, pacer); err != nil {
				return err
			}
		}
	}
	return nil
}

// moveKey relocates one record, idempotently and crash-safely: the new
// copy is made durable (backend discipline + PSync) strictly before the
// old copy is deleted, so a crash can duplicate a record across pools
// but never lose it — and resume deletes the stale copy.
func (s *Set) moveKey(t *topo, key string, hash uint64, src, dst int, pacer *Pacer) error {
	unlock := s.lockStripe(hash)
	defer unlock()

	var rec store.Record
	found, err := t.backends[src].Read(key, func(name string, value []byte) {
		v := make([]byte, len(value))
		copy(v, value)
		rec.Fields = append(rec.Fields, store.Field{Name: name, Value: v})
	})
	if err != nil {
		return fmt.Errorf("shard: migrate %q read: %w", key, err)
	}
	if !found {
		return nil // deleted, or already moved by the run a crash cut short
	}
	already, err := t.backends[dst].Read(key, func(string, []byte) {})
	if err != nil {
		return fmt.Errorf("shard: migrate %q probe: %w", key, err)
	}
	if !already {
		if err := t.backends[dst].Insert(key, &rec); err != nil {
			return fmt.Errorf("shard: migrate %q insert: %w", key, err)
		}
		t.mgrs[dst].DrainDurable()
		t.pools[dst].PSync()
	}
	if _, err := t.backends[src].Delete(key); err != nil {
		return fmt.Errorf("shard: migrate %q delete: %w", key, err)
	}
	s.stats.MigratedRecords.Inc()
	s.stats.MigratedBytes.Add(uint64(rec.Size()))
	if pacer != nil {
		pacer.pace(&s.stats)
	}
	return nil
}

// finalizeMigration commits the new world — one failure-atomic
// transaction, idempotent under resume — and reopens the write gate.
func (s *Set) finalizeMigration(newN int) error {
	t := s.topo.Load()
	arr := s.epochArr
	// Every source-pool delete must be durable before the topology
	// transaction declares the world clean: a crash after the commit but
	// before a straggling delete line fenced would resurrect the old
	// copy of a migrated record in a world that no longer probes for
	// duplicates.
	for _, p := range t.pools {
		p.PSync()
	}
	s.fbMu.Lock()
	_, _, _, _, fbNow := s.loadWorld()
	err := t.mgrs[0].Run(func(tx *fa.Tx) error {
		cur, err := arr.GetTx(tx, epEpoch)
		if err != nil {
			return err
		}
		if err := arr.SetTx(tx, epEpoch, cur+1); err != nil {
			return err
		}
		if err := arr.SetTx(tx, epNPools, int64(newN)); err != nil {
			return err
		}
		if err := arr.SetTx(tx, epMigrating, 0); err != nil {
			return err
		}
		fb := int64(0)
		if fbNow {
			fb = 1
		}
		return arr.SetTx(tx, epFallback, fb)
	})
	if err == nil {
		t.mgrs[0].DrainDurable()
	}
	s.fbMu.Unlock()
	if err != nil {
		return fmt.Errorf("shard: finalize tx: %w", err)
	}
	s.storeWorld(uint64(arr.Get(epEpoch)), newN, newN, false)
	s.locking.Store(false)
	return nil
}

// noteFallback makes off-home probing sticky before a fallback insert
// lands, so the record is reachable whatever the crash point. The flag
// only ever goes 0→1; a full migration could clear it, but staying
// conservative costs only extra probes on missing keys.
//
// The flag is persisted with a direct single-word write, not a
// failure-atomic block: an 8-byte aligned store is crash-atomic by
// itself, and — decisively — the redo log would have to allocate an
// in-flight block in pool 0, which may be the very pool that just ran
// out of memory. fbMu (held innermost, also around the topology
// transactions) keeps the direct write from racing a transaction's
// line-granular commit write-back of the same cache line.
func (s *Set) noteFallback() error {
	// Deliberately NOT s.mu: a gated writer calls this while holding a
	// stripe lock, and the migrator holds s.mu while waiting on stripes.
	s.fbMu.Lock()
	defer s.fbMu.Unlock()
	if _, _, _, _, fallback := s.loadWorld(); fallback {
		return nil
	}
	if s.epochArr == nil {
		return fmt.Errorf("shard: single pool cannot fall back")
	}
	t := s.topo.Load()
	s.epochArr.Set(epFallback, 1)
	s.epochArr.FlushElem(epFallback)
	t.pools[0].PSync()
	for {
		w := s.world.Load()
		if s.world.CompareAndSwap(w, w|1) {
			return nil
		}
	}
}

// errIsOOM reports an arena-exhaustion failure worth rerouting.
func errIsOOM(err error) bool { return errors.Is(err, heap.ErrOutOfMemory) }
