// Inventory demonstrates the code-generator workflow of §2.5: annotate a
// plain struct with //jnvm:persistent, run
//
//	go run ./cmd/jnvmgen examples/inventory/types.go
//
// and use the generated typed proxy (types_jnvm.go) instead of hand-written
// offset accessors. Compare with examples/quickstart, which writes the
// accessors by hand.
package main

import "repro/internal/core"

// Product is a catalog entry. Quantity/Price/Discontinued/SKU live in
// NVMM; Name is a reference to a pooled persistent string; views is a
// volatile statistic that vanishes with the process.
//
//jnvm:persistent
type Product struct {
	Quantity     int64
	Price        float64
	Discontinued bool
	SKU          [12]byte
	Name         core.Ref `jnvm:"ref"`
	views        int      // volatile
}
