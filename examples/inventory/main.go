package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	jnvm "repro"
	"repro/internal/pdt"
)

// The inventory keeps products in a persistent ordered map keyed by SKU,
// with every product accessed through the jnvmgen-generated ProductP
// proxy. Usage:
//
//	go run ./examples/inventory -pool /tmp/inv.pmem add WIDGET-00001 "left-handed widget" 250 9.99
//	go run ./examples/inventory -pool /tmp/inv.pmem sell WIDGET-00001 10
//	go run ./examples/inventory -pool /tmp/inv.pmem list

func openInventory(pool string) (*jnvm.DB, *jnvm.Map) {
	db, err := jnvm.Open(jnvm.Options{
		Path:    pool,
		Size:    32 << 20,
		Classes: []*jnvm.Class{ProductPClass()},
	})
	if err != nil {
		log.Fatal(err)
	}
	if db.Root().Exists("inventory") {
		po, err := db.Root().Get("inventory")
		if err != nil {
			log.Fatal(err)
		}
		return db, po.(*jnvm.Map)
	}
	m, err := jnvm.NewMap(db, jnvm.MirrorTree)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Root().Put("inventory", m); err != nil {
		log.Fatal(err)
	}
	return db, m
}

func main() {
	pool := flag.String("pool", "/tmp/jnvm-inventory.pmem", "persistent pool file")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: inventory add <sku> <name> <qty> <price> | sell <sku> <qty> | list | retire <sku>")
		os.Exit(2)
	}
	db, m := openInventory(*pool)
	defer db.Close()

	switch args[0] {
	case "add":
		if len(args) != 5 {
			log.Fatal("add <sku> <name> <qty> <price>")
		}
		sku := args[1]
		if len(sku) != 12 {
			log.Fatalf("SKU must be 12 bytes, got %d", len(sku))
		}
		qty, _ := strconv.ParseInt(args[3], 10, 64)
		price, _ := strconv.ParseFloat(args[4], 64)
		// Everything publishes atomically in one failure-atomic block.
		err := db.RunFA(func(tx *jnvm.Tx) error {
			p, err := NewProductPTx(tx)
			if err != nil {
				return err
			}
			name, err := jnvm.NewStringTx(tx, args[2])
			if err != nil {
				return err
			}
			// The product is invalid until commit: direct writes via the
			// generated non-Tx setters are exactly the §4.2 fast path.
			p.SetQuantity(qty)
			p.SetPrice(price)
			p.SetSKU([]byte(sku))
			p.SetName(name.Ref())
			return m.PutTx(tx, sku, p)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("added %s\n", sku)
	case "sell":
		if len(args) != 3 {
			log.Fatal("sell <sku> <qty>")
		}
		n, _ := strconv.ParseInt(args[2], 10, 64)
		po, err := m.Get(args[1])
		if err != nil {
			log.Fatal(err)
		}
		if po == nil {
			log.Fatalf("unknown SKU %s", args[1])
		}
		p := po.(*ProductP)
		err = db.RunFA(func(tx *jnvm.Tx) error {
			q, err := p.QuantityTx(tx)
			if err != nil {
				return err
			}
			if q < n {
				return fmt.Errorf("only %d in stock", q)
			}
			return p.SetQuantityTx(tx, q-n)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sold %d of %s, %d left\n", n, args[1], p.Quantity())
	case "retire":
		if len(args) != 2 {
			log.Fatal("retire <sku>")
		}
		po, err := m.Get(args[1])
		if err != nil || po == nil {
			log.Fatalf("unknown SKU %s", args[1])
		}
		p := po.(*ProductP)
		err = db.RunFA(func(tx *jnvm.Tx) error {
			return p.SetDiscontinuedTx(tx, true)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("retired %s\n", args[1])
	case "list":
		err := m.Ascend("", func(sku string, po jnvm.PObject) bool {
			p := po.(*ProductP)
			name := "?"
			if ref := p.Name(); ref != 0 {
				if npo, err := db.Resurrect(ref); err == nil {
					name = npo.(*pdt.PString).Value()
				}
			}
			state := ""
			if p.Discontinued() {
				state = " (discontinued)"
			}
			fmt.Printf("%-14s %-28s qty=%-6d $%.2f%s\n", sku, name, p.Quantity(), p.Price(), state)
			return true
		})
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown command %q", args[0])
	}
}
