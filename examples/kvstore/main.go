// Kvstore is a tiny durable key-value CLI over a J-PDT persistent map —
// the redis-like scenario the paper's introduction motivates, without any
// serialization layer between the process and its data.
//
//	go run ./examples/kvstore -pool /tmp/kv.pmem set lang golang
//	go run ./examples/kvstore -pool /tmp/kv.pmem set paper j-nvm
//	go run ./examples/kvstore -pool /tmp/kv.pmem get lang
//	go run ./examples/kvstore -pool /tmp/kv.pmem list
//	go run ./examples/kvstore -pool /tmp/kv.pmem del lang
//	go run ./examples/kvstore -pool /tmp/kv.pmem stats
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	jnvm "repro"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage: kvstore [-pool FILE] <command>
commands:
  set <key> <value>   bind key durably
  get <key>           print the value
  del <key>           delete key (explicit deletion, freeing NVMM)
  list                print all bindings in key order
  stats               pool occupancy`)
	os.Exit(2)
}

func main() {
	pool := flag.String("pool", "/tmp/jnvm-kv.pmem", "persistent pool file")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	db, err := jnvm.Open(jnvm.Options{Path: *pool, Size: 64 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	var m *jnvm.Map
	if db.Root().Exists("kv") {
		po, err := db.Root().Get("kv")
		if err != nil {
			log.Fatal(err)
		}
		m = po.(*jnvm.Map)
	} else {
		m, err = jnvm.NewMap(db, jnvm.MirrorTree) // ordered listing for free
		if err != nil {
			log.Fatal(err)
		}
		if err := db.Root().Put("kv", m); err != nil {
			log.Fatal(err)
		}
	}

	switch args[0] {
	case "set":
		if len(args) != 3 {
			usage()
		}
		val, err := jnvm.NewBytes(db, []byte(args[2]))
		if err != nil {
			log.Fatal(err)
		}
		if err := m.Put(args[1], val); err != nil {
			log.Fatal(err)
		}
		db.PSync()
		fmt.Printf("set %q\n", args[1])
	case "get":
		if len(args) != 2 {
			usage()
		}
		po, err := m.Get(args[1])
		if err != nil {
			log.Fatal(err)
		}
		if po == nil {
			fmt.Println("(nil)")
			return
		}
		fmt.Printf("%s\n", po.(*jnvm.PBytes).Value())
	case "del":
		if len(args) != 2 {
			usage()
		}
		if m.Delete(args[1]) {
			db.PSync()
			fmt.Printf("deleted %q\n", args[1])
		} else {
			fmt.Printf("%q was not bound\n", args[1])
		}
	case "list":
		err := m.Ascend("", func(key string, val jnvm.PObject) bool {
			fmt.Printf("%-24s %s\n", key, val.(*jnvm.PBytes).Value())
			return true
		})
		if err != nil {
			log.Fatal(err)
		}
	case "stats":
		bumped, free, total := db.Mem().Stats()
		fmt.Printf("keys:         %d\n", m.Len())
		fmt.Printf("arena blocks: %d used high-water, %d free, %d total\n", bumped, free, total)
		fmt.Printf("resurrected:  %d proxies this run\n", db.Resurrections())
	default:
		usage()
	}
}
