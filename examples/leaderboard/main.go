// Leaderboard keeps a durable, ordered game leaderboard in NVMM using a
// J-PDT map with a red-black-tree mirror: scores survive restarts, and
// range scans come from the volatile mirror while the data itself stays
// off-heap (§4.3.2).
//
//	go run ./examples/leaderboard -pool /tmp/lb.pmem add alice 31337
//	go run ./examples/leaderboard -pool /tmp/lb.pmem add bob 4242
//	go run ./examples/leaderboard -pool /tmp/lb.pmem top 10
//
// Keys are stored as inverted zero-padded scores so the tree mirror keeps
// the board sorted best-first.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	jnvm "repro"
)

const maxScore = 1_000_000_000

// scoreKey sorts descending: smaller key = higher score.
func scoreKey(score int64, player string) string {
	return fmt.Sprintf("%010d:%s", maxScore-score, player)
}

func main() {
	pool := flag.String("pool", "/tmp/jnvm-leaderboard.pmem", "persistent pool file")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: leaderboard add <player> <score> | top <n> | purge <player>")
		os.Exit(2)
	}

	db, err := jnvm.Open(jnvm.Options{Path: *pool, Size: 32 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	var board *jnvm.Map
	if db.Root().Exists("board") {
		po, err := db.Root().Get("board")
		if err != nil {
			log.Fatal(err)
		}
		board = po.(*jnvm.Map)
	} else {
		board, err = jnvm.NewMap(db, jnvm.MirrorTree)
		if err != nil {
			log.Fatal(err)
		}
		if err := db.Root().Put("board", board); err != nil {
			log.Fatal(err)
		}
	}

	switch args[0] {
	case "add":
		if len(args) != 3 {
			log.Fatal("add needs <player> <score>")
		}
		score, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil || score < 0 || score >= maxScore {
			log.Fatalf("bad score %q", args[2])
		}
		val, err := jnvm.NewBytes(db, []byte(args[1]))
		if err != nil {
			log.Fatal(err)
		}
		if err := board.Put(scoreKey(score, args[1]), val); err != nil {
			log.Fatal(err)
		}
		db.PSync()
		fmt.Printf("recorded %s = %d\n", args[1], score)
	case "top":
		n := 10
		if len(args) == 2 {
			n, _ = strconv.Atoi(args[1])
		}
		rank := 0
		err := board.Ascend("", func(key string, val jnvm.PObject) bool {
			rank++
			inv, _ := strconv.ParseInt(key[:10], 10, 64)
			fmt.Printf("%2d. %-16s %d\n", rank, val.(*jnvm.PBytes).Value(), maxScore-inv)
			return rank < n
		})
		if err != nil {
			log.Fatal(err)
		}
		if rank == 0 {
			fmt.Println("(empty board)")
		}
	case "purge":
		if len(args) != 2 {
			log.Fatal("purge needs <player>")
		}
		// Explicit deletion (§2.2.2): collect this player's entries, then
		// free them.
		var victims []string
		board.Ascend("", func(key string, val jnvm.PObject) bool {
			if string(val.(*jnvm.PBytes).Value()) == args[1] {
				victims = append(victims, key)
			}
			return true
		})
		for _, k := range victims {
			board.Delete(k)
		}
		db.PSync()
		fmt.Printf("purged %d entries for %s\n", len(victims), args[1])
	default:
		log.Fatalf("unknown command %q", args[0])
	}
}
