// Quickstart is Figure 3 of the paper in Go: a persistent Simple object
// with a durable counter and message, bound to a named root. Run it twice
// and watch the counter survive the process:
//
//	go run ./examples/quickstart -pool /tmp/simple.pmem
//	go run ./examples/quickstart -pool /tmp/simple.pmem
package main

import (
	"flag"
	"fmt"
	"log"

	jnvm "repro"
)

// simple mirrors the paper's Simple class: a persistent x, a persistent
// message reference, and a transient y.
type simple struct {
	*jnvm.Object
	y int // transient: lives only in the proxy
}

const (
	offX   = 0 // int64
	offMsg = 8 // ref to a PString
	size   = 16
)

func simpleClass() *jnvm.Class {
	return &jnvm.Class{
		Name:    "quickstart.Simple",
		Factory: func(o *jnvm.Object) jnvm.PObject { return &simple{Object: o} },
		Refs:    func(o *jnvm.Object) []uint64 { return []uint64{offMsg} },
	}
}

// newSimple is the constructor discipline of Figure 4: allocate, set
// fields, flush; the caller publishes (which validates and fences).
func newSimple(db *jnvm.DB, x int64, msg string) (*simple, error) {
	po, err := db.Alloc(db.MustClass("quickstart.Simple"), size)
	if err != nil {
		return nil, err
	}
	s := po.(*simple)
	s.WriteInt64(offX, x)
	m, err := jnvm.NewString(db, msg)
	if err != nil {
		return nil, err
	}
	m.Validate()
	s.WriteRef(offMsg, m.Ref())
	s.PWB()
	return s, nil
}

func (s *simple) inc() {
	s.WriteInt64(offX, s.ReadInt64(offX)+1)
	s.PWBField(offX, 8)
	s.PSync()
}

func (s *simple) msg(db *jnvm.DB) string {
	po, err := db.Resurrect(s.ReadRef(offMsg))
	if err != nil || po == nil {
		return "<lost>"
	}
	return po.(*jnvm.PString).Value()
}

func main() {
	pool := flag.String("pool", "/tmp/jnvm-simple.pmem", "persistent pool file")
	flag.Parse()

	// JNVM.init("/mnt/pmem/simple", 1MB) of Figure 3.
	db, err := jnvm.Open(jnvm.Options{
		Path:    *pool,
		Size:    8 << 20,
		Classes: []*jnvm.Class{simpleClass()},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// if (!JNVM.root.exists("simple")) JNVM.root.put("simple", new Simple(42));
	if !db.Root().Exists("simple") {
		s, err := newSimple(db, 42, "Hello, NVMM!")
		if err != nil {
			log.Fatal(err)
		}
		if err := db.Root().Put("simple", s); err != nil {
			log.Fatal(err)
		}
		fmt.Println("created a fresh Simple(42)")
	}

	po, err := db.Root().Get("simple")
	if err != nil {
		log.Fatal(err)
	}
	s := po.(*simple)
	s.inc()
	s.y = 42 // transient write: free, and gone at the next crash

	fmt.Printf("x   = %d (persists across runs)\n", s.ReadInt64(offX))
	fmt.Printf("msg = %s\n", s.msg(db))
	fmt.Printf("y   = %d (transient)\n", s.y)

	// The explicit-deletion part of Figure 3: replace the root object and
	// free the old one (lines 30-32 of the paper's listing).
	if s.ReadInt64(offX) >= 50 {
		fresh, err := newSimple(db, 24, "recycled!")
		if err != nil {
			log.Fatal(err)
		}
		old, _ := db.Root().Get("simple")
		if err := db.Root().Put("simple", fresh); err != nil {
			log.Fatal(err)
		}
		oldS := old.(*simple)
		msgRef := oldS.ReadRef(offMsg)
		if msgRef != 0 {
			mpo, _ := db.Resurrect(msgRef)
			db.Free(mpo) // JNVM.free(s.msg)
		}
		db.Free(oldS) // JNVM.free(s)
		db.PSync()
		fmt.Println("counter reached 50: recycled the object (explicit deletion)")
	}
}
