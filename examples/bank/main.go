// Bank demonstrates failure-atomic blocks (§4.2) on the TPC-B-like
// workload of §5.3.3: transfers between accounts commit entirely or not
// at all, even across a hard kill.
//
// Run a workload and kill it mid-flight, then verify on restart:
//
//	go run ./examples/bank -pool /tmp/bank.pmem -transfers 5000 -crash
//	go run ./examples/bank -pool /tmp/bank.pmem -verify
//
// The -crash run exits with os.Exit in the middle of the stream (the
// process equivalent of SIGKILL: no defers, no flushes); the next run
// replays or discards the interrupted block and the money is still
// conserved.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	jnvm "repro"
)

const (
	accounts    = 1000
	initialEach = 1000
)

// account layout: balance only (padding omitted for the example).
const accountSize = 8

func accountClass() *jnvm.Class {
	return &jnvm.Class{
		Name:    "bank.Account",
		Factory: func(o *jnvm.Object) jnvm.PObject { return o },
	}
}

func open(pool string) (*jnvm.DB, *jnvm.PRefArray) {
	db, err := jnvm.Open(jnvm.Options{
		Path:        pool,
		Size:        64 << 20,
		Classes:     []*jnvm.Class{accountClass()},
		LogSlotSize: 1 << 17, // the setup block logs one alloc per account
	})
	if err != nil {
		log.Fatal(err)
	}
	if db.Root().Exists("accounts") {
		po, err := db.Root().Get("accounts")
		if err != nil {
			log.Fatal(err)
		}
		return db, po.(*jnvm.PRefArray)
	}
	// First run: create every account inside one failure-atomic block, so
	// a crash during setup leaves nothing half-built.
	arr, err := jnvm.NewRefArray(db, accounts)
	if err != nil {
		log.Fatal(err)
	}
	err = db.RunFA(func(tx *jnvm.Tx) error {
		for i := 0; i < accounts; i++ {
			po, err := tx.Alloc(db.MustClass("bank.Account"), accountSize)
			if err != nil {
				return err
			}
			po.Core().WriteInt64(0, initialEach)
			if err := tx.WriteRef(arr.Core(), uint64(i)*8, po.Core().Ref()); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	arr.PWB() // the slot writes were direct (arr was invalid during the block)
	if err := db.Root().Put("accounts", arr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created %d accounts with %d each\n", accounts, initialEach)
	return db, arr
}

func total(db *jnvm.DB, arr *jnvm.PRefArray) int64 {
	var sum int64
	for i := 0; i < accounts; i++ {
		sum += db.Inspect(arr.GetRef(i)).ReadInt64(0)
	}
	return sum
}

func main() {
	pool := flag.String("pool", "/tmp/jnvm-bank.pmem", "persistent pool file")
	transfers := flag.Int("transfers", 5000, "transfers to execute")
	crash := flag.Bool("crash", false, "die ungracefully mid-workload")
	verify := flag.Bool("verify", false, "only check conservation and exit")
	flag.Parse()

	db, arr := open(*pool)
	defer db.Close()

	want := int64(accounts * initialEach)
	got := total(db, arr)
	fmt.Printf("total balance after recovery: %d (expected %d)\n", got, want)
	if got != want {
		log.Fatal("MONEY WAS CREATED OR DESTROYED — atomicity violated")
	}
	if *verify {
		fmt.Println("conservation holds ✓")
		return
	}

	rng := rand.New(rand.NewSource(int64(os.Getpid())))
	crashAt := -1
	if *crash {
		crashAt = *transfers / 2
	}
	for i := 0; i < *transfers; i++ {
		if i == crashAt {
			fmt.Printf("simulating SIGKILL after %d transfers\n", i)
			os.Exit(137) // no defers, no Close, nothing
		}
		fi, ti := rng.Intn(accounts), rng.Intn(accounts)
		if fi == ti {
			continue // a self-transfer is a no-op
		}
		from := db.Inspect(arr.GetRef(fi))
		to := db.Inspect(arr.GetRef(ti))
		amount := int64(rng.Intn(100))
		err := db.RunFA(func(tx *jnvm.Tx) error {
			fb, err := tx.ReadInt64(from, 0)
			if err != nil {
				return err
			}
			tb, err := tx.ReadInt64(to, 0)
			if err != nil {
				return err
			}
			if err := tx.WriteInt64(from, 0, fb-amount); err != nil {
				return err
			}
			return tx.WriteInt64(to, 0, tb+amount)
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("executed %d transfers; total is now %d\n", *transfers, total(db, arr))
}
