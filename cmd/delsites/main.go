// Command delsites regenerates Table 1: it counts the deletion sites for
// persistent objects in a Go source tree, supporting the paper's argument
// that explicit deletion is rare in data stores ("a handful of deletion
// sites", §2.2.2) and a runtime GC for NVMM therefore buys little.
//
// A deletion site is a call that frees persistent storage: Free(...),
// FreeObject(...), tx.Free(...), Delete(...) on a persistent map, and so
// on. Run it over this repository to see the claim hold here too:
//
//	delsites ./internal/store ./internal/tpcb ./examples
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// freeCalls are the method names that delete persistent objects.
var freeCalls = map[string]bool{
	"Free":       true,
	"FreeObject": true,
	"FreeRaw":    true,
}

func main() {
	includeTests := flag.Bool("tests", false, "include _test.go files")
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	fmt.Printf("%-40s%10s%10s\n", "tree", "SLOC", "# sites")
	for _, root := range roots {
		sloc, sites, err := scan(root, *includeTests)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-40s%10d%10d\n", root, sloc, len(sites))
		for _, s := range sites {
			fmt.Printf("    %s\n", s)
		}
	}
}

func scan(root string, includeTests bool) (sloc int, sites []string, err error) {
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		if !includeTests && strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(string(src), "\n") {
			t := strings.TrimSpace(line)
			if t != "" && !strings.HasPrefix(t, "//") {
				sloc++
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if freeCalls[sel.Sel.Name] {
				pos := fset.Position(call.Pos())
				sites = append(sites, fmt.Sprintf("%s:%d %s(...)", pos.Filename, pos.Line, sel.Sel.Name))
			}
			return true
		})
		return nil
	})
	return sloc, sites, err
}
