// Command fsck verifies the structural and reachability invariants of a
// J-NVM pool file, the way fsck verifies a file system: block headers,
// object chains, pool-chunk slots, and the liveness graph from the root
// map.
//
// Usage:
//
//	fsck /tmp/heap.pmem
//
// Exit status 0 means the heap is consistent. Note that opening the pool
// runs recovery first (redo-log replay + reachability GC), exactly as an
// application restart would; fsck then validates the recovered state.
package main

import (
	"flag"
	"fmt"
	"os"

	jnvm "repro"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fsck <pool-file>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	st, err := os.Stat(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	db, err := jnvm.Open(jnvm.Options{Path: path, Size: int(st.Size())})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsck: cannot open heap: %v\n", err)
		os.Exit(1)
	}
	defer db.Close()

	rs := db.RecoveryStats
	fmt.Printf("recovery: %d live objects, %d live blocks, %d refs nullified, %d root entries reclaimed\n",
		rs.LiveObjects, rs.LiveBlocks, rs.NullifiedRefs, rs.ReclaimedRoots)
	bumped, free, total := db.Mem().Stats()
	fmt.Printf("arena:    %d/%d blocks touched, %d on the free queue\n", bumped, total, free)
	fmt.Printf("roots:    %d named bindings\n", db.Root().Len())

	issues := db.Fsck(func(msg string) { fmt.Printf("ISSUE: %s\n", msg) })
	if issues == 0 {
		fmt.Println("heap is consistent ✓")
		return
	}
	fmt.Printf("%d issues found\n", issues)
	os.Exit(1)
}
