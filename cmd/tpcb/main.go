// Command tpcb regenerates Figure 11: the TPC-B-like bank is hammered
// with transfers, killed mid-run, restarted, and the throughput timeline
// plus the restart delay are reported for Volatile, J-PFA, J-PFA-nogc and
// FS.
//
// Usage:
//
//	tpcb [-accounts N] [-clients N] [-run 4s] [-crash 2s]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
)

func main() {
	accounts := flag.Int("accounts", 20_000, "bank accounts (paper: 10M)")
	clients := flag.Int("clients", 4, "load-injector goroutines")
	runFor := flag.Duration("run", 4*time.Second, "total injection time")
	crashAt := flag.Duration("crash", 0, "crash instant (default run/2)")
	bucket := flag.Duration("bucket", 100*time.Millisecond, "timeline bucket")
	groupCommit := flag.Bool("group-commit", false, "share commit barriers across the J-PFA clients")
	durability := flag.String("durability", "sync", "J-PFA commit durability: sync or async (epoch watermark)")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics JSON + pprof on this address (e.g. :6060)")
	flag.Parse()

	commit, err := bench.CommitModeName(*groupCommit, *durability)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *metricsAddr != "" {
		obs.Serve(*metricsAddr, func(err error) {
			fmt.Fprintf(os.Stderr, "metrics listener: %v\n", err)
		})
	}

	tls, err := bench.Fig11(bench.Fig11Config{
		Accounts:   *accounts,
		Clients:    *clients,
		RunFor:     *runFor,
		CrashAfter: *crashAt,
		Bucket:     *bucket,
		Commit:     commit,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bench.PrintFig11(os.Stdout, tls)
}
