// Command ycsb regenerates the YCSB figures of the paper's evaluation:
// Figure 7 (backend throughput), Figure 8 (marshalling cost), Figures
// 9a-9d (sensitivity) and Figure 10 (thread scaling).
//
// Usage:
//
//	ycsb -exp fig7 [-records N] [-ops N] [-threads N]
//	ycsb -exp fig8|fig9a|fig9b|fig9c|fig9d|fig10|all
//
// The paper's full-size parameters (3M records, 100M ops) are reachable
// with the flags; defaults are laptop-scaled.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/obs"
)

func main() {
	exp := flag.String("exp", "fig7", "experiment: fig7, fig8, fig9a, fig9b, fig9c, fig9d, fig10, exte, shard, all")
	records := flag.Int("records", 0, "record count (0 = scaled default)")
	ops := flag.Int("ops", 0, "operation count (0 = scaled default)")
	threads := flag.Int("threads", 1, "client threads (the paper defaults to a sequential client)")
	pools := flag.String("pools", "1,4,8", "pool counts for -exp shard (DESIGN.md \u00a717)")
	groupCommit := flag.Bool("group-commit", false, "share commit barriers across concurrent committers (J-NVM backends)")
	durability := flag.String("durability", "sync", "commit durability: sync (Commit returns durable) or async (epoch watermark)")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics JSON + pprof on this address (e.g. :6060)")
	jsonOut := flag.String("json", "", "also write experiment rows (with embedded per-run metrics) as JSON to this file")
	flag.Parse()

	if *metricsAddr != "" {
		obs.Serve(*metricsAddr, func(err error) {
			fmt.Fprintf(os.Stderr, "metrics listener: %v\n", err)
		})
	}
	results := map[string]any{}

	sc := bench.DefaultScale()
	if *records > 0 {
		sc.Records = *records
	}
	if *ops > 0 {
		sc.Operations = *ops
	}
	sc.Threads = *threads
	commit, err := bench.CommitModeName(*groupCommit, *durability)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sc.Commit = commit

	run := func(name string) error {
		switch name {
		case "fig7":
			rows, err := bench.Fig7(sc, nil)
			if err != nil {
				return err
			}
			bench.PrintFig7(os.Stdout, rows)
			results[name] = rows
		case "fig8":
			rows, err := bench.Fig8(sc, nil)
			if err != nil {
				return err
			}
			bench.PrintFig8(os.Stdout, rows)
			results[name] = rows
		case "fig9a":
			rows, err := bench.Fig9a(sc, nil)
			if err != nil {
				return err
			}
			bench.PrintFig9(os.Stdout, "Figure 9a — impact of the cache ratio (YCSB-A)", rows)
			results[name] = rows
		case "fig9b":
			rows, err := bench.Fig9b(sc, nil)
			if err != nil {
				return err
			}
			bench.PrintFig9(os.Stdout, "Figure 9b — impact of the number of records (YCSB-A)", rows)
			results[name] = rows
		case "fig9c":
			rows, err := bench.Fig9c(sc, nil)
			if err != nil {
				return err
			}
			bench.PrintFig9(os.Stdout, "Figure 9c — impact of the number of fields (YCSB-A)", rows)
			results[name] = rows
		case "fig9d":
			rows, err := bench.Fig9d(sc, nil)
			if err != nil {
				return err
			}
			bench.PrintFig9(os.Stdout, "Figure 9d — impact of the record size (YCSB-A)", rows)
			results[name] = rows
		case "fig10":
			rows, err := bench.Fig10(sc, nil)
			if err != nil {
				return err
			}
			bench.PrintFig10(os.Stdout, rows)
			results[name] = rows
		case "exte":
			rows, err := bench.ExtE(sc, 0)
			if err != nil {
				return err
			}
			bench.PrintExtE(os.Stdout, rows)
			results[name] = rows
		case "shard":
			var counts []int
			for _, tok := range strings.Split(*pools, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(tok))
				if err != nil || n < 1 {
					return fmt.Errorf("bad -pools entry %q", tok)
				}
				counts = append(counts, n)
			}
			ssc := sc
			if ssc.Threads < 8 {
				ssc.Threads = 8 // the sweep's point is contending clients
			}
			var rows []bench.ShardRow
			for _, bk := range []bench.BackendKind{bench.JPFA, bench.JPDT} {
				r, err := bench.ShardSweep(ssc, bk, "A", counts)
				if err != nil {
					return err
				}
				rows = append(rows, r...)
			}
			bench.PrintShard(os.Stdout, rows)
			results[name] = rows
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"fig7", "fig8", "fig9a", "fig9b", "fig9c", "fig9d", "fig10", "exte", "shard"}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(results, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, buf, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
	}
}
