// Command datatypes regenerates Figure 12: YCSB-A run directly on the
// J-PDT maps (hash table, red-black tree, skip list) against their
// volatile counterparts, plus the Blackhole injection baseline.
//
// Usage:
//
//	datatypes [-records N] [-ops N] [-vallen N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	records := flag.Int("records", 20_000, "key count")
	ops := flag.Int("ops", 80_000, "operations")
	valLen := flag.Int("vallen", 100, "value size in bytes")
	flag.Parse()

	rows, err := bench.Fig12(*records, *ops, *valLen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bench.PrintFig12(os.Stdout, rows)
}
