// Command blockbw regenerates Table 3 (256 B block access bandwidth,
// framework path vs native path) and, with -frag, the internal
// fragmentation accounting of §5.3.5.
//
// Usage:
//
//	blockbw [-mb 64] [-frag]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/heap"
)

func main() {
	mb := flag.Int("mb", 64, "bytes to move per pattern, in MB")
	frag := flag.Bool("frag", false, "print the internal-fragmentation table instead")
	flag.Parse()

	if *frag {
		printFragmentation()
		return
	}
	rows, err := bench.Table3(*mb)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bench.PrintTable3(os.Stdout, rows)
}

// printFragmentation reproduces the §5.3.5 numbers: space lost to block
// headers and rounding for a 10-field record stored contiguously.
func printFragmentation() {
	fmt.Println("Internal fragmentation (10-field record stored as one chained object)")
	fmt.Printf("%-14s%14s%14s%12s\n", "field size", "user bytes", "raw bytes", "lost")
	for _, fieldLen := range []int{100, 1_000, 10_240} {
		user := uint64(10 * fieldLen)
		raw := uint64(heap.BlocksFor(user)) * heap.BlockSize
		fmt.Printf("%-14d%14d%14d%11.1f%%\n", fieldLen, user, raw,
			float64(raw-user)/float64(raw)*100)
	}
	fmt.Println("# paper: 21.2% at 100B fields, 9.4% at 10KB fields")
}
