// Command gcsweep regenerates the garbage-collection counter-examples of
// §2.2: Figure 1 (managed cache ratio vs GC cost and tail latency under
// the G1-style collector) and Figure 2 (go-pmem-style GC time growing
// with the persistent dataset).
//
// Usage:
//
//	gcsweep -exp fig2 [-ops N] [-gcmb N] [-datasets 16,32,64,128,256]
//	gcsweep -exp fig1 [-records N] [-ops N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func parseInts(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad list element %q\n", f)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func main() {
	exp := flag.String("exp", "fig2", "experiment: fig1, fig2, all")
	ops := flag.Int("ops", 0, "operation count (0 = default)")
	records := flag.Int("records", 0, "record count for fig1 (0 = default)")
	gcmb := flag.Int("gcmb", 0, "collect every N MB of allocation (paper: every 10 GB; 0 = scaled default)")
	datasets := flag.String("datasets", "", "comma-separated dataset sizes in MB for fig2")
	ratios := flag.String("ratios", "", "comma-separated cache ratios (%) for fig1")
	flag.Parse()

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"fig1", "fig2"}
	}
	for _, n := range names {
		switch n {
		case "fig1":
			rows, err := bench.Fig1(*records, *ops, parseInts(*ratios), *gcmb)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			bench.PrintFig1(os.Stdout, rows)
		case "fig2":
			rows, err := bench.Fig2(parseInts(*datasets), *ops, *gcmb)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			bench.PrintFig2(os.Stdout, rows)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", n)
			os.Exit(2)
		}
		fmt.Println()
	}
}
