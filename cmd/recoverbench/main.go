// Command recoverbench measures recovery time as a function of the
// worker count of the parallel recovery pipeline (redo-log replay,
// reachability mark, segment sweep, mirror rebuild). It builds a heap
// holding a large persistent map — every entry is a pair object, a key
// string and a pooled value array, so a million entries is several
// million live objects — punches garbage into it, snapshots the pool
// image as a crash would leave it, and then re-opens that image once per
// requested worker count, timing Open (replay + mark + sweep) and the
// first Root().Get (mirror rebuild) separately. Per-phase nanosecond
// breakdowns come from the shared obs layer, so the JSON shows where the
// workers helped. The workers=1 row is the paper's serial §4.1.3
// procedure and the speedup denominator.
//
// `make bench-recovery` writes results/BENCH_recovery.json. Speedup is
// bounded by the host: on a single-core container every configuration
// degenerates to the serial schedule, which is why the file records
// NumCPU alongside the rows.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/fa"
	"repro/internal/heap"
	"repro/internal/nvm"
	"repro/internal/obs"
	"repro/internal/pdt"
	"repro/internal/results"
	"repro/internal/shard"
	"repro/internal/store"
)

// Row is one recovery measurement at a fixed worker count.
type Row struct {
	Workers   int     `json:"workers"`
	OpenMs    float64 `json:"open_ms"`
	RebuildMs float64 `json:"rebuild_ms"`
	TotalMs   float64 `json:"total_ms"`
	// Speedup is total recovery time relative to the workers=1 row.
	Speedup float64 `json:"speedup"`
	// Recovery is the per-phase breakdown and counters from the obs layer
	// (replay/mark/sweep/rebuild ns, live objects, swept blocks, ...).
	// For sharded runs it is the element-wise sum across pools.
	Recovery obs.RecoverySnapshot `json:"recovery"`
	// PerPool is the per-pool recovery breakdown of a sharded run
	// (DESIGN.md §17.4): pools recover concurrently, so the slowest
	// entry bounds the open time, not the sum.
	PerPool []obs.RecoverySnapshot `json:"per_pool,omitempty"`
}

// Result is the serialized benchmark file.
type Result struct {
	results.Header
	Structure   string `json:"structure"`
	Entries     int    `json:"entries"`
	LiveEntries int    `json:"live_entries"`
	ValueBytes  int    `json:"value_bytes"`
	PoolMB      int    `json:"pool_mb"`
	Pools       int    `json:"pools"`
	Rows        []Row  `json:"rows"`
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "recoverbench:", err)
	os.Exit(1)
}

func main() {
	entries := flag.Int("entries", 1_000_000, "map entries to load before the crash")
	valueBytes := flag.Int("value-bytes", 32, "payload size of each value")
	poolMB := flag.Int("pool-mb", 2048, "pool size in MiB")
	workersFlag := flag.String("workers", "1,2,4,8", "comma-separated recovery worker counts (1 = serial oracle)")
	deleteEvery := flag.Int("delete-every", 7, "delete every Nth entry so the sweep sees garbage (0 disables)")
	structure := flag.String("structure", "hash", "table structure: hash (locked pdt.Map) or lockfree (pdt.LFMap; its rebuild is the §16 cell judgment, parallel above the chunk threshold)")
	repeat := flag.Int("repeat", 3, "recoveries per worker count; the fastest is reported")
	poolsN := flag.Int("pools", 1, "shard the heap across this many NVMM pools (DESIGN.md §17); pools recover concurrently, workers split across them")
	out := flag.String("out", "results/BENCH_recovery.json", "output JSON path")
	check := flag.String("check", "", "compare against this committed recovery JSON and fail on drift: deterministic counters (live_objects, rebuild_entries, replayed_tx) always, total_ms only when num_cpu matches")
	tol := flag.Float64("tol", 0.5, "relative recovery-time tolerance for -check (the deterministic counters must match exactly)")
	flag.Parse()

	var workerCounts []int
	for _, tok := range strings.Split(*workersFlag, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || w < 1 {
			fatal(fmt.Errorf("bad -workers entry %q", tok))
		}
		workerCounts = append(workerCounts, w)
	}

	if *structure != "hash" && *structure != "lockfree" {
		fatal(fmt.Errorf("bad -structure %q (want hash or lockfree)", *structure))
	}

	fmt.Printf("building heap: %d entries, %dB values, %d MiB pool, %s table, %d pool(s)\n",
		*entries, *valueBytes, *poolMB, *structure, *poolsN)
	var snapshots [][]byte
	var liveEntries int
	if *poolsN > 1 {
		var err error
		snapshots, liveEntries, err = buildShardCrashImages(*entries, *valueBytes, *poolMB, *deleteEvery, *structure, *poolsN)
		if err != nil {
			fatal(err)
		}
	} else {
		one, live, err := buildCrashImage(*entries, *valueBytes, *poolMB, *deleteEvery, *structure)
		if err != nil {
			fatal(err)
		}
		snapshots, liveEntries = [][]byte{one}, live
	}
	recover := func(workers int) (Row, error) {
		if *poolsN > 1 {
			return recoverOnceShard(snapshots, workers, liveEntries, *structure)
		}
		return recoverOnce(snapshots[0], workers, liveEntries, *structure)
	}

	res := Result{
		Header:      results.NewHeader(),
		Structure:   *structure,
		Entries:     *entries,
		LiveEntries: liveEntries,
		ValueBytes:  *valueBytes,
		PoolMB:      *poolMB,
		Pools:       *poolsN,
	}
	// Warm-up: the first recovery grows the Go runtime heap (mark queues,
	// mirror maps) and faults in fresh spans, which would otherwise be
	// billed entirely to whichever worker count runs first.
	if _, err := recover(1); err != nil {
		fatal(err)
	}

	var base float64
	for _, w := range workerCounts {
		row, err := recover(w)
		if err != nil {
			fatal(fmt.Errorf("workers=%d: %w", w, err))
		}
		for r := 1; r < *repeat; r++ {
			again, err := recover(w)
			if err != nil {
				fatal(fmt.Errorf("workers=%d: %w", w, err))
			}
			if again.TotalMs < row.TotalMs {
				row = again
			}
		}
		if base == 0 {
			base = row.TotalMs
		}
		if row.TotalMs > 0 {
			row.Speedup = base / row.TotalMs
		}
		res.Rows = append(res.Rows, row)
		fmt.Printf("workers=%d  open %.1f ms  rebuild %.1f ms  total %.1f ms  speedup %.2fx  (%d live objects)\n",
			row.Workers, row.OpenMs, row.RebuildMs, row.TotalMs, row.Speedup,
			row.Recovery.LiveObjects)
	}

	if *check != "" {
		if err := checkResult(*check, &res, *tol); err != nil {
			fatal(err)
		}
		fmt.Printf("check: recovery counters match %s\n", *check)
		return
	}
	if err := results.WriteJSON(*out, &res); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", *out)
}

// checkResult is the recovery gate of `make bench-check` (run at a small,
// CI-sized -entries). The work counters of a recovery are a function of
// the crash image alone, so at fixed build parameters they must reproduce
// exactly: live_objects, rebuild_entries and replayed_tx drifting means
// the recovery pipeline changed what it recovers, not just how fast.
// Wall-clock totals are only comparable on a host as wide as the one that
// produced the committed file, and even then stay noisy, so total_ms is
// gated loosely and only when num_cpu matches.
func checkResult(path string, now *Result, tol float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var old Result
	if err := json.Unmarshal(buf, &old); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if old.Entries != now.Entries || old.Structure != now.Structure || old.Pools != now.Pools {
		return fmt.Errorf("check: committed file built with -entries %d -structure %s -pools %d, this run with %d/%s/%d",
			old.Entries, old.Structure, old.Pools, now.Entries, now.Structure, now.Pools)
	}
	var failures []string
	if old.LiveEntries != now.LiveEntries {
		failures = append(failures, fmt.Sprintf("live_entries: %d -> %d", old.LiveEntries, now.LiveEntries))
	}
	oldRows := map[int]Row{}
	for _, r := range old.Rows {
		oldRows[r.Workers] = r
	}
	matched := 0
	for _, r := range now.Rows {
		o, ok := oldRows[r.Workers]
		if !ok {
			continue
		}
		matched++
		for _, c := range []struct {
			name     string
			was, now uint64
		}{
			{"live_objects", o.Recovery.LiveObjects, r.Recovery.LiveObjects},
			{"rebuild_entries", o.Recovery.RebuildEntries, r.Recovery.RebuildEntries},
			{"replayed_tx", o.Recovery.ReplayedTx, r.Recovery.ReplayedTx},
		} {
			if c.was != c.now {
				failures = append(failures, fmt.Sprintf("workers=%d %s: %d -> %d", r.Workers, c.name, c.was, c.now))
			}
		}
		if old.NumCPU == now.NumCPU && o.TotalMs > 0 && r.TotalMs > o.TotalMs*(1+tol) {
			failures = append(failures, fmt.Sprintf("workers=%d total_ms: %.1f -> %.1f (tol %.0f%%)",
				r.Workers, o.TotalMs, r.TotalMs, 100*tol))
		}
	}
	if matched == 0 {
		return fmt.Errorf("check: no worker counts of %s match this run", path)
	}
	if len(failures) > 0 {
		return fmt.Errorf("check: %d recovery regression(s) vs %s:\n  %s", len(failures), path, strings.Join(failures, "\n  "))
	}
	return nil
}

// buildCrashImage loads the pool and returns its byte image as a crash
// would leave it (the pool is in direct mode, so the post-PSync image is
// exactly the durable state), plus the number of live map entries a
// correct recovery must reproduce.
func buildCrashImage(entries, valueBytes, poolMB, deleteEvery int, structure string) ([]byte, int, error) {
	pool := nvm.New(poolMB<<20, nvm.Options{})
	db, err := jnvm.OpenPool(pool, jnvm.Options{})
	if err != nil {
		return nil, 0, err
	}
	// put/del abstract over the two table structures; the lock-free map
	// takes born-valid values and persists only the destination cell.
	var put func(key string, payload []byte) error
	var del func(key string) bool
	switch structure {
	case "hash":
		m, err := jnvm.NewMap(db, jnvm.MirrorHash)
		if err != nil {
			return nil, 0, err
		}
		if err := db.Root().Put("table", m); err != nil {
			return nil, 0, err
		}
		put = func(key string, payload []byte) error {
			val, err := jnvm.NewBytes(db, payload)
			if err != nil {
				return err
			}
			return m.Put(key, val)
		}
		del = m.Delete
	case "lockfree":
		m, err := pdt.NewLFMap(db.Heap, entries/3)
		if err != nil {
			return nil, 0, err
		}
		if err := db.Root().Put("table", m); err != nil {
			return nil, 0, err
		}
		put = func(key string, payload []byte) error {
			val, err := pdt.NewBytesValid(db.Heap, payload)
			if err != nil {
				return err
			}
			return m.Put(key, val)
		}
		del = m.Delete
	}
	payload := make([]byte, valueBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	start := time.Now()
	for i := 0; i < entries; i++ {
		if err := put(fmt.Sprintf("key-%08d", i), payload); err != nil {
			return nil, 0, fmt.Errorf("entry %d: %w", i, err)
		}
	}
	live := entries
	if deleteEvery > 0 {
		for i := 0; i < entries; i += deleteEvery {
			if del(fmt.Sprintf("key-%08d", i)) {
				live--
			}
		}
	}
	db.PSync()
	fmt.Printf("loaded in %.1f s (%d live entries)\n", time.Since(start).Seconds(), live)
	snapshot := pool.ReadBytes(0, pool.Size())
	db.Close()
	return snapshot, live, nil
}

// recoverOnce restores the crash image into a fresh pool and runs the
// full recovery pipeline at the given worker count, verifying that the
// recovered table has the expected size.
func recoverOnce(snapshot []byte, workers, wantEntries int, structure string) (Row, error) {
	pool := nvm.New(len(snapshot), nvm.Options{})
	pool.WriteBytes(0, snapshot)

	openStart := time.Now()
	db, err := jnvm.OpenPool(pool, jnvm.Options{RecoverParallelism: workers})
	if err != nil {
		return Row{}, err
	}
	openDur := time.Since(openStart)

	rebuildStart := time.Now()
	po, err := db.Root().Get("table")
	if err != nil {
		return Row{}, err
	}
	rebuildDur := time.Since(rebuildStart)

	var got int
	switch m := po.(type) {
	case *jnvm.Map:
		got = m.Len()
	case *pdt.LFMap:
		got = m.Len()
	default:
		return Row{}, fmt.Errorf("root object has type %T, want a map (structure %s)", po, structure)
	}
	if got != wantEntries {
		return Row{}, fmt.Errorf("recovered map has %d entries, want %d", got, wantEntries)
	}
	snap := db.RecoveryObs().Snapshot()
	db.Close()
	return Row{
		Workers:   workers,
		OpenMs:    float64(openDur.Nanoseconds()) / 1e6,
		RebuildMs: float64(rebuildDur.Nanoseconds()) / 1e6,
		TotalMs:   float64((openDur + rebuildDur).Nanoseconds()) / 1e6,
		Recovery:  snap,
	}, nil
}

// shardCfg builds the shard set configuration for the sharded benchmark
// variants: a J-PDT backend per pool ("hash") or its lock-free sibling
// ("lockfree"), with the recovery worker budget split across pools.
func shardCfg(structure string, workers int) shard.Config {
	return shard.Config{
		HeapOptions: heap.Options{LogSlots: 16, LogSlotSize: 1 << 15},
		Classes:     func() []*core.Class { return append(pdt.Classes(), store.Classes()...) },
		Parallelism: workers,
		NewBackend: func(h *core.Heap, mgr *fa.Manager) (store.Backend, error) {
			if structure == "lockfree" {
				return store.NewJPDTLFBackend(h, "kv")
			}
			return store.NewJPDTBackend(h, "kv")
		},
	}
}

// buildShardCrashImages loads the dataset through the sharded heap's
// routing backend, with the pool budget split evenly, and snapshots every
// pool image as a crash would leave it.
func buildShardCrashImages(entries, valueBytes, poolMB, deleteEvery int, structure string, npools int) ([][]byte, int, error) {
	per := poolMB / npools
	if per < 16 {
		per = 16
	}
	pools := make([]*nvm.Pool, npools)
	for i := range pools {
		pools[i] = nvm.New(per<<20, nvm.Options{})
	}
	set, err := shard.Open(pools, shardCfg(structure, 0))
	if err != nil {
		return nil, 0, err
	}
	b := set.Backend()
	payload := make([]byte, valueBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	start := time.Now()
	field := []store.Field{{Name: "v", Value: payload}}
	for i := 0; i < entries; i++ {
		if err := b.Insert(fmt.Sprintf("key-%08d", i), &store.Record{Fields: field}); err != nil {
			return nil, 0, fmt.Errorf("entry %d: %w", i, err)
		}
	}
	live := entries
	if deleteEvery > 0 {
		for i := 0; i < entries; i += deleteEvery {
			ok, err := b.Delete(fmt.Sprintf("key-%08d", i))
			if err != nil {
				return nil, 0, err
			}
			if ok {
				live--
			}
		}
	}
	set.DrainDurable()
	snapshots := make([][]byte, npools)
	for i, p := range pools {
		p.PSync()
		snapshots[i] = p.ReadBytes(0, p.Size())
	}
	fmt.Printf("loaded in %.1f s (%d live entries across %d pools)\n", time.Since(start).Seconds(), live, npools)
	return snapshots, live, set.Close()
}

// recoverOnceShard restores every pool image and re-opens the set: pools
// recover concurrently (the worker budget splits across them), then the
// first Count() forces every pool's mirror rebuild. The per-pool
// breakdown shows where the concurrency helped; the summed snapshot keeps
// the single-pool JSON shape.
func recoverOnceShard(snapshots [][]byte, workers, wantEntries int, structure string) (Row, error) {
	pools := make([]*nvm.Pool, len(snapshots))
	for i, sn := range snapshots {
		pools[i] = nvm.New(len(sn), nvm.Options{})
		pools[i].WriteBytes(0, sn)
	}
	openStart := time.Now()
	set, err := shard.Open(pools, shardCfg(structure, workers))
	if err != nil {
		return Row{}, err
	}
	openDur := time.Since(openStart)

	rebuildStart := time.Now()
	got := set.Backend().Count()
	rebuildDur := time.Since(rebuildStart)
	if got != wantEntries {
		return Row{}, fmt.Errorf("recovered set has %d entries, want %d", got, wantEntries)
	}
	row := Row{
		Workers:   workers,
		OpenMs:    float64(openDur.Nanoseconds()) / 1e6,
		RebuildMs: float64(rebuildDur.Nanoseconds()) / 1e6,
		TotalMs:   float64((openDur + rebuildDur).Nanoseconds()) / 1e6,
	}
	for i := 0; i < set.Pools(); i++ {
		snap := set.Heap(i).RecoveryObs().Snapshot()
		row.PerPool = append(row.PerPool, snap)
		row.Recovery = row.Recovery.Add(snap)
	}
	return row, set.Close()
}
