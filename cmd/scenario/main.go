// Command scenario runs the end-to-end scenario fleet (DESIGN.md §18)
// against real gridserver and loadgen processes, writing one
// schema-versioned JSON report per scenario into -out.
//
//	go build -o bin/gridserver ./cmd/gridserver
//	go build -o bin/loadgen ./cmd/loadgen
//	go run ./cmd/scenario -all -duration 15s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/scenario"
)

func main() {
	names := flag.String("run", "", "comma-separated scenario names (see -list)")
	all := flag.Bool("all", false, "run every scenario")
	list := flag.Bool("list", false, "print scenario names and exit")
	serverBin := flag.String("server-bin", "bin/gridserver", "gridserver binary")
	loadgenBin := flag.String("loadgen-bin", "bin/loadgen", "loadgen binary")
	addr := flag.String("addr", "127.0.0.1:7421", "server address for the run")
	out := flag.String("out", "results/scenarios", "report output directory")
	duration := flag.Duration("duration", 15*time.Second, "measured load length per scenario")
	records := flag.Int("records", 5_000, "preloaded key-space size")
	quiet := flag.Bool("quiet", false, "suppress subprocess output")
	flag.Parse()

	if *list {
		for _, n := range scenario.Names {
			fmt.Println(n)
		}
		return
	}
	var run []string
	switch {
	case *all:
		run = scenario.Names
	case *names != "":
		run = strings.Split(*names, ",")
	default:
		fmt.Fprintln(os.Stderr, "scenario: need -all or -run NAME[,NAME...]; -list shows names")
		os.Exit(2)
	}

	scratch, err := os.MkdirTemp("", "scenario-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(scratch)

	o := scenario.Options{
		ServerBin:  *serverBin,
		LoadgenBin: *loadgenBin,
		Addr:       *addr,
		OutDir:     *out,
		ScratchDir: scratch,
		Duration:   *duration,
		Records:    *records,
	}
	if !*quiet {
		o.Log = os.Stdout
	}

	failed := 0
	for _, name := range run {
		fmt.Printf("=== scenario %s (%v load)\n", name, *duration)
		start := time.Now()
		rep, err := scenario.Run(name, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario %s: FAIL: %v\n", name, err)
			failed++
			continue
		}
		fmt.Printf("=== scenario %s: OK in %v: %.0f ops/s, p50 %.0fus p95 %.0fus p99 %.0fus, %d errors",
			name, time.Since(start).Round(time.Second),
			rep.ThroughputOps, rep.Latency.P50Us, rep.Latency.P95Us, rep.Latency.P99Us, rep.Errors)
		if rep.PWBPerOp > 0 {
			fmt.Printf(", %.1f pwb/op %.2f pfence/op", rep.PWBPerOp, rep.PFencePerOp)
		}
		if rep.Crash != nil {
			fmt.Printf(", %d acked / %d missing, ready in %.0fms",
				rep.Crash.AckedTotal, rep.Crash.Missing, rep.Crash.RestartToReadyMS)
		}
		fmt.Println()
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "scenario: %d of %d scenarios failed\n", failed, len(run))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scenario:", err)
	os.Exit(1)
}
