// Command shardbench sweeps the NVMM pool count of the sharded heap
// (DESIGN.md §17) under one YCSB workload and records the throughput
// curve. The pools=1 row runs the classic single-pool stack — the same
// code path as BENCH_baseline.json — so the curve's origin is directly
// comparable with the committed baseline; the sharded rows route records
// by jump consistent hashing across per-pool allocators, redo logs and
// backend locks. `make bench-shard` writes results/BENCH_shard.json.
//
// With -gate (the default), the run fails if a 4+-pool configuration
// does not beat the single-pool row at 8+ client goroutines: the win is
// the tentpole claim of the sharding work, and the gate keeps it from
// silently rotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/results"
)

// Result is the serialized sweep file.
type Result struct {
	results.Header
	Records    int              `json:"records"`
	Operations int              `json:"operations"`
	Threads    int              `json:"threads"`
	Rows       []bench.ShardRow `json:"rows"`
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shardbench:", err)
	os.Exit(1)
}

func main() {
	records := flag.Int("records", 8_000, "YCSB record count")
	ops := flag.Int("ops", 30_000, "YCSB operations per client goroutine")
	threads := flag.Int("threads", 8, "client goroutines")
	workload := flag.String("workload", "A", "YCSB workload letter")
	backendsFlag := flag.String("backends", "J-PFA,J-PDT", "comma-separated backends to sweep")
	poolsFlag := flag.String("pools", "1,4,8", "comma-separated pool counts (1 = classic single-pool stack)")
	commit := flag.String("commit", "", "J-NVM commit protocol: empty (per-tx), group or async")
	gate := flag.Bool("gate", true, "fail unless every 4+-pool row beats the single-pool row at 8+ threads")
	out := flag.String("out", "results/BENCH_shard.json", "output JSON path")
	flag.Parse()

	var poolCounts []int
	for _, tok := range strings.Split(*poolsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad -pools entry %q", tok))
		}
		poolCounts = append(poolCounts, n)
	}

	res := Result{
		Header:     results.NewHeader(),
		Records:    *records,
		Operations: *ops,
		Threads:    *threads,
	}
	sc := bench.Scale{Records: *records, Operations: *ops, Threads: *threads, Commit: *commit}
	for _, tok := range strings.Split(*backendsFlag, ",") {
		bk := bench.BackendKind(strings.TrimSpace(tok))
		rows, err := bench.ShardSweep(sc, bk, *workload, poolCounts)
		if err != nil {
			fatal(err)
		}
		res.Rows = append(res.Rows, rows...)
	}

	bench.PrintShard(os.Stdout, res.Rows)

	if *gate {
		if err := gateRows(res.Rows); err != nil {
			fatal(err)
		}
	}

	if err := results.WriteJSON(*out, &res); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", *out)
}

// gateRows enforces the sharding win in-run (host speed cancels out):
// each backend's 4+-pool rows must beat its single-pool row when 8+
// clients contend. The win is physical parallelism — per-pool locks and
// fence spins overlapping on separate cores — so on a host without
// spare cores (GOMAXPROCS < 4) the gate degrades to bounding the
// routing tax: sharded rows must stay within 20% of single-pool.
// Errors on any row are a hard failure regardless.
func gateRows(rows []bench.ShardRow) error {
	var failures []string
	single := map[string]float64{}
	for _, r := range rows {
		if r.Errors != 0 {
			failures = append(failures, fmt.Sprintf("%s/%s/%dp: %d op errors", r.Workload, r.Backend, r.Pools, r.Errors))
		}
		if r.Pools == 1 {
			single[r.Workload+"|"+string(r.Backend)] = r.KopsSec
		}
	}
	multicore := runtime.GOMAXPROCS(0) >= 4
	if !multicore {
		fmt.Printf("gate: GOMAXPROCS=%d — no spare cores for pool parallelism; bounding the routing tax instead of requiring a win\n",
			runtime.GOMAXPROCS(0))
	}
	for _, r := range rows {
		if r.Pools < 4 || r.Threads < 8 {
			continue
		}
		base, ok := single[r.Workload+"|"+string(r.Backend)]
		if !ok {
			continue
		}
		if multicore && r.KopsSec <= base {
			failures = append(failures,
				fmt.Sprintf("sharding did not pay: %s/%s %.1f Kops/s with %d pools vs %.1f single-pool",
					r.Workload, r.Backend, r.KopsSec, r.Pools, base))
		}
		if !multicore && r.KopsSec < base*0.8 {
			failures = append(failures,
				fmt.Sprintf("routing tax too high: %s/%s %.1f Kops/s with %d pools vs %.1f single-pool (>20%%)",
					r.Workload, r.Backend, r.KopsSec, r.Pools, base))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("gate: %s", strings.Join(failures, "; "))
	}
	return nil
}
