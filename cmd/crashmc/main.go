// Command crashmc runs the deterministic crash-consistency explorer over
// the standing workloads (see internal/crashmc). It exits non-zero if any
// crash image violates its workload's invariants, printing a minimized
// (point, sample, seed) report that reproduces the failure with one
// command:
//
//	go run ./cmd/crashmc -workload bank -seed 1 -point 137 -sample 2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/crashmc"
)

func main() {
	var (
		workload    = flag.String("workload", "all", "workload to explore (bank, grid, pool, pdt, all)")
		points      = flag.Int("points", 0, "max crash points per workload (0 = every ordering point)")
		samples     = flag.Int("samples", 4, "random line-subset images per crash point")
		seed        = flag.Int64("seed", 1, "seed for the op mix and subset sampling")
		par         = flag.Int("par", 8, "parallel recovery worker count checked against the serial oracle")
		point       = flag.Int("point", 0, "explore only this crash point (repro mode)")
		sample      = flag.Int("sample", -3, "with -point: only this sample index (-1 strict, -2 all-pending)")
		maxFailures = flag.Int("max-failures", 3, "stop a workload after this many failures (<0 = unlimited)")
		out         = flag.String("out", "", "write the JSON report here")
		verbose     = flag.Bool("v", false, "log per-workload progress")
	)
	flag.Parse()

	var targets []*crashmc.Workload
	if *workload == "all" {
		targets = crashmc.Workloads()
	} else {
		w, ok := crashmc.ByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "crashmc: unknown workload %q\n", *workload)
			os.Exit(2)
		}
		targets = []*crashmc.Workload{w}
	}
	if *point > 0 && *workload == "all" {
		fmt.Fprintln(os.Stderr, "crashmc: -point requires a single -workload")
		os.Exit(2)
	}

	opt := crashmc.Options{
		Points:      *points,
		Samples:     *samples,
		Seed:        *seed,
		Par:         *par,
		Point:       *point,
		Sample:      *sample,
		MaxFailures: *maxFailures,
	}
	if *verbose {
		opt.Log = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}

	var reports []*crashmc.Report
	failures := 0
	for _, w := range targets {
		start := time.Now()
		rep, err := crashmc.Explore(w, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crashmc: %s: %v\n", w.Name, err)
			os.Exit(2)
		}
		reports = append(reports, rep)
		failures += len(rep.Failures)
		fmt.Printf("%-5s %6d points, explored %5d, %6d images, %d failures (%.1fs)\n",
			w.Name, rep.Points, rep.Explored, rep.Images, len(rep.Failures), time.Since(start).Seconds())
		for i := range rep.Failures {
			fmt.Println(rep.Failures[i].String())
		}
	}

	if *out != "" {
		data, err := json.MarshalIndent(reports, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "crashmc: write %s: %v\n", *out, err)
			os.Exit(2)
		}
	}

	if failures > 0 {
		fmt.Printf("crashmc: %d failure(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("crashmc: all invariants held")
}
