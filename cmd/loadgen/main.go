// Command loadgen drives a gridserver over the wire protocol: N
// connections, explicit pipelining, zipfian or uniform key choice,
// closed-loop (saturation) or open-loop (fixed arrival rate, latencies
// measured from the schedule so coordinated omission does not hide
// queueing) modes. Results land as schema-versioned JSON that the
// scenario runner merges across processes — run several loadgen
// processes against one server with distinct -proc ids and the
// histograms add up.
//
// Two special modes serve the crash-and-recover scenario:
//
//	-insert-seq   every connection inserts a deterministic key sequence
//	              ("<prefix><conn>-<seq>") and records how many inserts
//	              were acknowledged before the connection broke. Because
//	              responses are in-order, the acked count is a contiguous
//	              prefix of the key sequence.
//	-verify FILE  reads the acks JSON of a previous -insert-seq run and
//	              checks every acknowledged key is present; exits nonzero
//	              if any acknowledged write was lost.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/results"
	"repro/internal/store"
	"repro/internal/wire"
	"repro/internal/ycsb"
)

// ProcResult is one loadgen process's output document.
type ProcResult struct {
	results.Header
	Label     string  `json:"label,omitempty"`
	Addr      string  `json:"addr"`
	Proc      int     `json:"proc"`
	Conns     int     `json:"conns"`
	Pipeline  int     `json:"pipeline"`
	Mode      string  `json:"mode"` // closed | open
	Dist      string  `json:"dist"`
	RateOps   float64 `json:"rate_ops,omitempty"` // open-loop target
	DurationS float64 `json:"duration_s"`

	Ops      uint64 `json:"ops"`
	Errors   uint64 `json:"errors"`
	NotFound uint64 `json:"not_found"`

	// Acked, in -insert-seq mode, is the per-connection count of
	// acknowledged inserts; connection i's acknowledged keys are exactly
	// "<key_prefix><conn_base+i>-<j>" for j in [0, acked[i]).
	Acked     []uint64 `json:"acked,omitempty"`
	KeyPrefix string   `json:"key_prefix,omitempty"`
	ConnBase  int      `json:"conn_base,omitempty"`

	// HotKeys is the run's top-8 key frequencies across the chooser-drawn
	// ops — the skew evidence behind a fold ratio: under zipfian the head
	// keys soak up most deltas, which is exactly what the ledger coalesces.
	HotKeys []HotKey `json:"hot_keys,omitempty"`

	PerOp map[string]*ycsb.Histogram `json:"per_op"`
}

// HotKey is one entry of the hot-key report.
type HotKey struct {
	Key   string `json:"key"`
	Count uint64 `json:"count"`
}

// Throughput returns measured operations per second.
func (r *ProcResult) Throughput() float64 {
	if r.DurationS == 0 {
		return 0
	}
	return float64(r.Ops) / r.DurationS
}

type mix struct {
	insert, read, update, delete, delta, rmw int // cumulative thresholds out of 100
}

func (m mix) pick(rng *rand.Rand) wire.Op {
	v := rng.Intn(100)
	switch {
	case v < m.insert:
		return wire.OpInsert
	case v < m.read:
		return wire.OpRead
	case v < m.update:
		return wire.OpUpdate
	case v < m.delete:
		return wire.OpDelete
	case v < m.delta:
		return wire.OpAddDelta
	default:
		return wire.OpRMW
	}
}

var opNames = map[wire.Op]string{
	wire.OpInsert:   "INSERT",
	wire.OpRead:     "READ",
	wire.OpUpdate:   "UPDATE",
	wire.OpDelete:   "DELETE",
	wire.OpRMW:      "RMW",
	wire.OpAddDelta: "ADDDELTA",
}

type connStats struct {
	ops, errors, notFound uint64
	acked                 uint64
	perOp                 map[wire.Op]*ycsb.Histogram
	keyCounts             map[string]uint64 // chooser-drawn key frequencies
}

func newConnStats() *connStats {
	return &connStats{
		perOp:     make(map[wire.Op]*ycsb.Histogram),
		keyCounts: make(map[string]uint64),
	}
}

func (c *connStats) record(op wire.Op, d time.Duration) {
	h := c.perOp[op]
	if h == nil {
		h = &ycsb.Histogram{}
		c.perOp[op] = h
	}
	h.Record(d)
	c.ops++
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7420", "gridserver address")
	conns := flag.Int("conns", 4, "concurrent connections")
	pipeline := flag.Int("pipeline", 16, "pipelined requests per window")
	duration := flag.Duration("duration", 15*time.Second, "measured run length")
	maxOps := flag.Uint64("max-ops", 0, "per-connection operation cap (0: unlimited); bounds pool growth in insert modes")
	rate := flag.Float64("rate", 0, "open-loop target ops/s across all connections (0: closed loop)")
	dist := flag.String("dist", "zipfian", "key distribution: zipfian (scrambled, theta=0.99), hot (unscrambled zipfian) or uniform")
	records := flag.Int("records", 5_000, "key-space size (keys user%012d over [0,records))")
	fields := flag.Int("fields", 10, "fields per inserted/updated record")
	fieldLen := flag.Int("fieldlen", 100, "bytes per field value")
	readPct := flag.Int("read-pct", 50, "read percentage of the mix")
	updatePct := flag.Int("update-pct", 50, "update percentage of the mix")
	insertPct := flag.Int("insert-pct", 0, "insert percentage of the mix (fresh keys)")
	deletePct := flag.Int("delete-pct", 0, "delete percentage of the mix")
	rmwPct := flag.Int("rmw-pct", 0, "read-modify-write percentage of the mix")
	deltaPct := flag.Int("delta-pct", 0, "counter-increment (OpAddDelta) percentage of the mix")
	deltaField := flag.String("delta-field", "field0", "counter field for -delta-pct increments (must hold an 8-byte value; preload with -fieldlen 8)")
	preload := flag.Bool("preload", false, "insert the whole key space before the measured run")
	insertSeq := flag.Bool("insert-seq", false, "crash-scenario mode: per-connection deterministic insert sequences, record acked counts")
	keyPrefix := flag.String("key-prefix", "c", "key prefix for -insert-seq / -verify")
	verifyPath := flag.String("verify", "", "verify mode: path to a previous -insert-seq result JSON; check every acked key")
	proc := flag.Int("proc", 0, "process id for multi-process runs (seeds rngs, offsets -insert-seq connections)")
	label := flag.String("label", "", "free-form label copied into the result JSON")
	out := flag.String("out", "", "write the result JSON here (default stdout only)")
	flag.Parse()

	if *verifyPath != "" {
		os.Exit(runVerify(*addr, *verifyPath, *pipeline, *out))
	}

	m := mix{insert: *insertPct}
	m.read = m.insert + *readPct
	m.update = m.read + *updatePct
	m.delete = m.update + *deletePct
	m.delta = m.delete + *deltaPct
	if m.delta+*rmwPct != 100 {
		fatal(fmt.Errorf("mix percentages sum to %d, want 100", m.delta+*rmwPct))
	}

	fieldNames := make([]string, *fields)
	for i := range fieldNames {
		fieldNames[i] = fmt.Sprintf("field%d", i)
	}

	if *preload {
		if err := runPreload(*addr, *conns, *pipeline, *records, fieldNames, *fieldLen, *proc); err != nil {
			fatal(err)
		}
	}

	stats := make([]*connStats, *conns)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(*duration)
	for i := 0; i < *conns; i++ {
		stats[i] = newConnStats()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := wire.DialTimeout(*addr, 5*time.Second)
			if err != nil {
				stats[i].errors++
				return
			}
			defer cl.Close()
			w := worker{
				cl:         cl,
				st:         stats[i],
				rng:        rand.New(rand.NewSource(int64(*proc)<<16 | int64(i) + 1)),
				pipeline:   *pipeline,
				deadline:   deadline,
				maxOps:     *maxOps,
				mix:        m,
				records:    *records,
				fieldNames: fieldNames,
				fieldLen:   *fieldLen,
				deltaField: *deltaField,
				insertBase: fmt.Sprintf("n%d-%d-", *proc, i),
			}
			switch *dist {
			case "uniform":
				var n atomic.Int64
				n.Store(int64(*records))
				w.chooser = ycsb.NewUniform(&n)
			case "hot":
				// Unscrambled zipfian: indices 0,1,2... are the hottest,
				// concentrating traffic on a handful of keys (and their
				// stripe locks) — the hot-key contention scenario.
				w.chooser = ycsb.NewZipfian(*records)
			default:
				w.chooser = ycsb.NewScrambledZipfian(*records)
			}
			switch {
			case *insertSeq:
				w.runInsertSeq(fmt.Sprintf("%s%d-", *keyPrefix, *proc**conns+i))
			case *rate > 0:
				w.runOpen(*rate / float64(*conns))
			default:
				w.runClosed()
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := ProcResult{
		Header:    results.NewHeader(),
		Label:     *label,
		Addr:      *addr,
		Proc:      *proc,
		Conns:     *conns,
		Pipeline:  *pipeline,
		Mode:      "closed",
		Dist:      *dist,
		RateOps:   *rate,
		DurationS: elapsed.Seconds(),
		PerOp:     make(map[string]*ycsb.Histogram),
	}
	if *rate > 0 {
		res.Mode = "open"
	}
	if *insertSeq {
		res.Mode = "insert-seq"
		res.KeyPrefix = *keyPrefix
		res.ConnBase = *proc * *conns
		res.Acked = make([]uint64, *conns)
	}
	keyCounts := make(map[string]uint64)
	for i, st := range stats {
		res.Ops += st.ops
		res.Errors += st.errors
		res.NotFound += st.notFound
		if *insertSeq {
			res.Acked[i] = st.acked
		}
		for op, h := range st.perOp {
			dst := res.PerOp[opNames[op]]
			if dst == nil {
				dst = &ycsb.Histogram{}
				res.PerOp[opNames[op]] = dst
			}
			dst.Merge(h)
		}
		for k, n := range st.keyCounts {
			keyCounts[k] += n
		}
	}
	res.HotKeys = topKeys(keyCounts, 8)

	all := &ycsb.Histogram{}
	for _, h := range res.PerOp {
		all.Merge(h)
	}
	fmt.Printf("loadgen: %s %.0f ops/s (%d ops, %d errors, %d not-found) %s\n",
		res.Mode, res.Throughput(), res.Ops, res.Errors, res.NotFound, all)
	if len(res.HotKeys) > 0 && res.Ops > 0 {
		parts := make([]string, len(res.HotKeys))
		for i, hk := range res.HotKeys {
			parts[i] = fmt.Sprintf("%s:%.1f%%", hk.Key, 100*float64(hk.Count)/float64(res.Ops))
		}
		fmt.Printf("loadgen: hot keys: %s\n", strings.Join(parts, " "))
	}

	if *out != "" {
		if err := results.WriteJSON(*out, &res); err != nil {
			fatal(err)
		}
	} else {
		buf, _ := json.MarshalIndent(&res, "", "  ")
		os.Stdout.Write(append(buf, '\n'))
	}
}

// worker is one connection's run state.
type worker struct {
	cl         *wire.Client
	st         *connStats
	rng        *rand.Rand
	chooser    ycsb.KeyChooser
	pipeline   int
	deadline   time.Time
	maxOps     uint64 // 0: unlimited
	mix        mix
	records    int
	fieldNames []string
	fieldLen   int
	deltaField string
	insertBase string // fresh-key prefix for mixed-mode inserts
	insertSeq  uint64
}

func (w *worker) makeFields() []store.Field {
	out := make([]store.Field, len(w.fieldNames))
	for i := range out {
		v := make([]byte, w.fieldLen)
		for j := range v {
			v[j] = byte('a' + w.rng.Intn(26))
		}
		out[i] = store.Field{Name: w.fieldNames[i], Value: v}
	}
	return out
}

func (w *worker) makeReq(req *wire.Request) {
	op := w.mix.pick(w.rng)
	req.Op = op
	req.Field, req.Delta = "", 0
	switch op {
	case wire.OpInsert:
		// Fresh keys: inserting over the loaded key space would collide.
		req.Key = fmt.Sprintf("%s%d", w.insertBase, w.insertSeq)
		w.insertSeq++
		req.Fields = w.makeFields()
	case wire.OpRead, wire.OpDelete:
		req.Key = ycsb.Key(w.chooser.Next(w.rng))
		req.Fields = nil
	case wire.OpAddDelta:
		req.Key = ycsb.Key(w.chooser.Next(w.rng))
		req.Fields = nil
		req.Field = w.deltaField
		req.Delta = 1
	default: // update, rmw
		req.Key = ycsb.Key(w.chooser.Next(w.rng))
		req.Fields = w.makeFields()
	}
	if op != wire.OpInsert {
		w.st.keyCounts[req.Key]++
	}
}

// runClosed is the saturation loop: send a full pipeline window, wait
// for every response, repeat until the deadline.
func (w *worker) runClosed() {
	reqs := make([]wire.Request, w.pipeline)
	times := make([]time.Time, w.pipeline)
	var resp wire.Response
	var sent uint64
	for time.Now().Before(w.deadline) {
		if w.maxOps > 0 {
			if sent >= w.maxOps {
				return
			}
			if rem := w.maxOps - sent; rem < uint64(len(reqs)) {
				reqs = reqs[:rem]
				times = times[:rem]
			}
		}
		sent += uint64(len(reqs))
		for i := range reqs {
			w.makeReq(&reqs[i])
			times[i] = time.Now()
			if err := w.cl.Send(&reqs[i]); err != nil {
				w.st.errors++
				return
			}
		}
		if err := w.cl.Flush(); err != nil {
			w.st.errors++
			return
		}
		for i := range reqs {
			if err := w.cl.Recv(&resp); err != nil {
				w.st.errors++
				return
			}
			w.observe(reqs[i].Op, &resp, time.Since(times[i]))
		}
	}
}

// runOpen paces requests on a fixed schedule (perConnRate ops/s) and
// measures latency from the scheduled send time, so server-side queueing
// during overload shows up in the tail instead of being absorbed by a
// slowed-down sender.
func (w *worker) runOpen(perConnRate float64) {
	interval := time.Duration(float64(time.Second) / perConnRate)
	type inflight struct {
		op    wire.Op
		sched time.Time
	}
	// The queue bounds how far the sender may run ahead of the reader —
	// past that, the run is declared saturated and sends block.
	queue := make(chan inflight, 4*w.pipeline)
	done := make(chan struct{})
	var sendErr atomic.Bool

	go func() {
		defer close(queue)
		var req wire.Request
		sched := time.Now()
		var sent uint64
		for sched.Before(w.deadline) {
			if w.maxOps > 0 && sent >= w.maxOps {
				return
			}
			sent++
			if d := time.Until(sched); d > 0 {
				time.Sleep(d)
			}
			w.makeReq(&req)
			if err := w.cl.Send(&req); err != nil {
				sendErr.Store(true)
				return
			}
			if err := w.cl.Flush(); err != nil {
				sendErr.Store(true)
				return
			}
			select {
			case queue <- inflight{req.Op, sched}:
			case <-done:
				return
			}
			sched = sched.Add(interval)
		}
	}()

	var resp wire.Response
	for f := range queue {
		if err := w.cl.Recv(&resp); err != nil {
			w.st.errors++
			close(done)
			return
		}
		w.observe(f.op, &resp, time.Since(f.sched))
	}
	if sendErr.Load() {
		w.st.errors++
	}
}

// runInsertSeq inserts the deterministic key sequence "<base><j>" and
// counts acknowledged inserts. Responses are in-order, so st.acked is a
// contiguous prefix no matter where the server dies.
func (w *worker) runInsertSeq(base string) {
	reqs := make([]wire.Request, w.pipeline)
	times := make([]time.Time, w.pipeline)
	var resp wire.Response
	var seq uint64
	for time.Now().Before(w.deadline) {
		if w.maxOps > 0 {
			if seq >= w.maxOps {
				return
			}
			if rem := w.maxOps - seq; rem < uint64(len(reqs)) {
				reqs = reqs[:rem]
				times = times[:rem]
			}
		}
		for i := range reqs {
			reqs[i] = wire.Request{
				Op:     wire.OpInsert,
				Key:    fmt.Sprintf("%s%d", base, seq),
				Fields: w.makeFields(),
			}
			seq++
			times[i] = time.Now()
			if err := w.cl.Send(&reqs[i]); err != nil {
				w.st.errors++
				return
			}
		}
		if err := w.cl.Flush(); err != nil {
			w.st.errors++
			return
		}
		for i := range reqs {
			if err := w.cl.Recv(&resp); err != nil {
				w.st.errors++
				return
			}
			if resp.Status != wire.StatusOK {
				w.st.errors++
				return
			}
			w.st.record(wire.OpInsert, time.Since(times[i]))
			w.st.acked++
		}
	}
}

func (w *worker) observe(op wire.Op, resp *wire.Response, d time.Duration) {
	switch resp.Status {
	case wire.StatusOK:
		w.st.record(op, d)
	case wire.StatusNotFound:
		w.st.notFound++
		w.st.record(op, d)
	default:
		w.st.errors++
	}
}

// runPreload inserts keys [0, records) split across conns connections,
// pipelined, before the measured phase.
func runPreload(addr string, conns, pipeline, records int, fieldNames []string, fieldLen, proc int) error {
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, conns)
	per := (records + conns - 1) / conns
	for c := 0; c < conns; c++ {
		lo, hi := c*per, (c+1)*per
		if hi > records {
			hi = records
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			cl, err := wire.DialTimeout(addr, 5*time.Second)
			if err != nil {
				errs[c] = err
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(proc)<<20 | int64(c)))
			var resp wire.Response
			for lo < hi {
				n := pipeline
				if hi-lo < n {
					n = hi - lo
				}
				for i := 0; i < n; i++ {
					fields := make([]store.Field, len(fieldNames))
					for f := range fields {
						v := make([]byte, fieldLen)
						for j := range v {
							v[j] = byte('a' + rng.Intn(26))
						}
						fields[f] = store.Field{Name: fieldNames[f], Value: v}
					}
					req := wire.Request{Op: wire.OpInsert, Key: ycsb.Key(lo + i), Fields: fields}
					if err := cl.Send(&req); err != nil {
						errs[c] = err
						return
					}
				}
				if err := cl.Flush(); err != nil {
					errs[c] = err
					return
				}
				for i := 0; i < n; i++ {
					if err := cl.Recv(&resp); err != nil {
						errs[c] = err
						return
					}
					if resp.Status == wire.StatusErr {
						errs[c] = fmt.Errorf("preload insert: %s", resp.Msg)
						return
					}
				}
				lo += n
			}
		}(c, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("preload: %w", err)
		}
	}
	fmt.Printf("loadgen: preloaded %d records in %v\n", records, time.Since(start).Round(time.Millisecond))
	return nil
}

// verifyResult is the -verify output document.
type verifyResult struct {
	results.Header
	Source  string `json:"source"`
	Checked uint64 `json:"checked"`
	Missing uint64 `json:"missing"`
}

// runVerify reads a previous -insert-seq result and checks every
// acknowledged key is present on the (restarted) server.
func runVerify(addr, path string, pipeline int, out string) int {
	buf, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var prev ProcResult
	if err := json.Unmarshal(buf, &prev); err != nil {
		fatal(err)
	}
	if prev.Mode != "insert-seq" {
		fatal(fmt.Errorf("verify: %s is a %q result, want insert-seq", path, prev.Mode))
	}
	cl, err := wire.DialTimeout(addr, 5*time.Second)
	if err != nil {
		fatal(err)
	}
	defer cl.Close()

	var checked, missing uint64
	keys := make([]string, 0, pipeline)
	var resp wire.Response
	flush := func() bool {
		if err := cl.Flush(); err != nil {
			fatal(err)
		}
		for _, k := range keys {
			if err := cl.Recv(&resp); err != nil {
				fatal(err)
			}
			checked++
			if resp.Status != wire.StatusOK {
				missing++
				fmt.Fprintf(os.Stderr, "loadgen: verify: acked key %q missing (status %d)\n", k, resp.Status)
			}
		}
		keys = keys[:0]
		return true
	}
	for i, n := range prev.Acked {
		base := fmt.Sprintf("%s%d-", prev.KeyPrefix, prev.ConnBase+i)
		for j := uint64(0); j < n; j++ {
			k := fmt.Sprintf("%s%d", base, j)
			if err := cl.Send(&wire.Request{Op: wire.OpRead, Key: k}); err != nil {
				fatal(err)
			}
			keys = append(keys, k)
			if len(keys) == pipeline {
				flush()
			}
		}
	}
	flush()

	res := verifyResult{Header: results.NewHeader(), Source: path, Checked: checked, Missing: missing}
	fmt.Printf("loadgen: verify: %d acked keys checked, %d missing\n", checked, missing)
	if out != "" {
		if err := results.WriteJSON(out, &res); err != nil {
			fatal(err)
		}
	}
	if missing > 0 {
		return 1
	}
	return 0
}

// topKeys reduces a merged frequency map to its n highest-count entries,
// ties broken by key for a deterministic report.
func topKeys(counts map[string]uint64, n int) []HotKey {
	if len(counts) == 0 {
		return nil
	}
	all := make([]HotKey, 0, len(counts))
	for k, c := range counts {
		all = append(all, HotKey{Key: k, Count: c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Key < all[j].Key
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
