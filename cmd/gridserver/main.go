// Command gridserver exposes the embedded data grid over TCP: the wire
// protocol of internal/wire (DESIGN.md §18), per-connection pipeline
// batching folded into the async group-commit pipeline, connection-limit
// backpressure, and graceful drain on SIGTERM. With -data the NVMM pools
// are file-backed, so a SIGKILLed server restarted on the same directory
// recovers every acknowledged write — the crash-and-recover scenario's
// subject.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/wire"
)

// statsPayload is the OpStats response document. The scenario runner
// diffs two of these to derive pwb/op and pfence/op for a run interval.
type statsPayload struct {
	Backend  string                 `json:"backend"`
	Commit   string                 `json:"commit"`
	Pools    int                    `json:"pools"`
	Records  int                    `json:"records"`
	UptimeS  float64                `json:"uptime_s"`
	Server   obs.ServerSnapshot     `json:"server"`
	Stack    *obs.StackSnapshot     `json:"stack"`
	Recovery []obs.RecoverySnapshot `json:"recovery,omitempty"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7420", "listen address")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics JSON + pprof on this address (e.g. :6060)")
	backend := flag.String("backend", "J-PFA", "grid backend: J-PFA, J-PDT, J-PDT-LF, PCJ, Volatile, TmpFS, FS")
	commit := flag.String("commit", "async", "J-NVM commit protocol: per-tx, group or async")
	pools := flag.Int("pools", 1, "NVMM pool count (DESIGN.md §17)")
	records := flag.Int("records", 8_000, "expected record count (pool sizing hint)")
	fields := flag.Int("fields", 10, "expected fields per record (pool sizing hint)")
	fieldLen := flag.Int("fieldlen", 100, "expected field value bytes (pool sizing hint)")
	dataDir := flag.String("data", "", "directory for file-backed pools (empty: volatile in-memory NVMM simulation)")
	maxConns := flag.Int("max-conns", 256, "concurrent connection cap (accept-loop backpressure)")
	maxBatch := flag.Int("max-batch", 128, "max requests folded into one pipeline window")
	injectDelay := flag.Duration("inject-delay", 0, "per-request processing delay (degraded-latency scenarios)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful drain bound on SIGTERM")
	flag.Parse()

	if *metricsAddr != "" {
		obs.Serve(*metricsAddr, func(err error) {
			fmt.Fprintln(os.Stderr, "gridserver: metrics:", err)
		})
	}

	commitMode := *commit
	if commitMode == "per-tx" {
		commitMode = ""
	}
	env, err := bench.NewEnv(bench.GridConfig{
		Backend:    bench.BackendKind(*backend),
		Records:    *records * 2,
		FieldCount: *fields,
		FieldLen:   *fieldLen,
		Commit:     commitMode,
		Pools:      *pools,
		DataDir:    *dataDir,
	})
	if err != nil {
		fatal(err)
	}
	defer env.Close()

	// Count touches the backend's root structure, forcing the mirror
	// rebuild on a recovered heap, so "listening" below really means
	// ready to serve — the scenario runner's restart-to-ready clock
	// includes rebuild time.
	openStart := time.Now()
	recovered := env.Grid.Count()
	if recovered > 0 {
		fmt.Printf("gridserver: recovered %d records in %v\n", recovered, time.Since(openStart).Round(time.Millisecond))
	}

	start := time.Now()
	recoverySnaps := func() []obs.RecoverySnapshot {
		var out []obs.RecoverySnapshot
		if env.Heap != nil {
			out = append(out, env.Heap.RecoveryObs().Snapshot())
		}
		if env.Set != nil {
			for i := 0; i < env.Set.Pools(); i++ {
				out = append(out, env.Set.Heap(i).RecoveryObs().Snapshot())
			}
		}
		return out
	}

	// Only the async pipeline defers durability past the grid call; the
	// per-window wait is what makes an acknowledged write durable.
	var await func()
	if commitMode == "async" {
		await = env.AwaitDurable
	}
	var srv *wire.Server
	srv = wire.NewServer(wire.ServerConfig{
		Grid:         env.Grid,
		AwaitDurable: await,
		MaxConns:     *maxConns,
		MaxBatch:     *maxBatch,
		InjectDelay:  *injectDelay,
		StatsJSON: func() []byte {
			p := statsPayload{
				Backend:  *backend,
				Commit:   *commit,
				Pools:    *pools,
				Records:  env.Grid.Count(),
				UptimeS:  time.Since(start).Seconds(),
				Server:   srv.Stats().Snapshot(),
				Stack:    env.Snapshot(),
				Recovery: recoverySnaps(),
			}
			buf, err := json.Marshal(p)
			if err != nil {
				return []byte("{}")
			}
			return buf
		},
	})
	obs.Default.Publish("gridserver", func() any { return srv.Stats().Snapshot() })

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("gridserver: listening on %s (backend=%s commit=%s pools=%d max-conns=%d max-batch=%d)\n",
		l.Addr(), *backend, *commit, *pools, *maxConns, *maxBatch)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	select {
	case sig := <-sigCh:
		fmt.Printf("gridserver: %v: draining (timeout %v)\n", sig, *drainTimeout)
		clean := srv.Shutdown(*drainTimeout)
		<-done
		env.Close()
		if !clean {
			fmt.Fprintln(os.Stderr, "gridserver: drain timed out with connections still active")
			os.Exit(1)
		}
		fmt.Println("gridserver: drained")
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gridserver:", err)
	os.Exit(1)
}
