// Command jnvmgen is the code generator of §2.5: it reads Go source files,
// finds structs marked with a //jnvm:persistent comment, and writes
// <file>_jnvm.go next to each input with the generated persistent proxy —
// typed getters/setters, per-field flush methods, transactional accessors,
// atomic reference helpers and the core.Class descriptor.
//
// Usage:
//
//	jnvmgen [-module repro] [-prefix myapp] file.go [file2.go ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/gen"
)

func main() {
	module := flag.String("module", "repro", "module path used in generated imports")
	prefix := flag.String("prefix", "", "persistent class-name prefix (default: package name)")
	stdout := flag.Bool("stdout", false, "print generated code instead of writing files")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: jnvmgen [-module M] [-prefix P] file.go ...")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		out, err := gen.GenerateSource(path, src, gen.SrcOptions{Module: *module, ClassPrefix: *prefix})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if out == nil {
			fmt.Fprintf(os.Stderr, "jnvmgen: %s: no //jnvm:persistent structs\n", path)
			continue
		}
		if *stdout {
			os.Stdout.Write(out)
			continue
		}
		dst := strings.TrimSuffix(path, ".go") + "_jnvm.go"
		if err := os.WriteFile(dst, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("jnvmgen: wrote %s\n", dst)
	}
}
