// Command baseline records the repository's performance baseline: short
// YCSB-A/B/C/F passes over the three J-NVM backends plus a
// multi-goroutine TPC-B transfer pass, each annotated with the
// persistence-primitive rates (pwb/op, pfence/op) and the Go allocation
// rate (allocs/op) from the shared obs layer. The output file
// (BENCH_baseline.json via `make bench`) anchors the perf trajectory of
// the optimization PRs: each pipeline change re-runs it and diffs the
// throughput, flush-rate and allocation columns against the committed
// baseline. num_cpu is recorded per row so cross-host runs stay
// comparable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/fa"
	"repro/internal/nvm"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/tpcb"
	"repro/internal/ycsb"
)

// Row is one benchmark measurement.
type Row struct {
	Bench string `json:"bench"`
	// Commit is the J-NVM commit protocol of the row: empty (the
	// per-Tx default), "per-tx" (explicit, in the group-commit sweep),
	// "group" or "async".
	Commit  string `json:"commit,omitempty"`
	Backend string `json:"backend"`
	Threads int    `json:"threads"`
	// Pools is the NVMM pool count of the row's heap (DESIGN.md §17);
	// 0/1 is the classic single-pool stack.
	Pools       int     `json:"pools,omitempty"`
	Ops         int     `json:"ops"`
	NumCPU      int     `json:"num_cpu"`
	KopsSec     float64 `json:"kops_sec"`
	P99Us       float64 `json:"p99_us"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	PWBPerOp    float64 `json:"pwb_per_op"`
	PFencePerOp float64 `json:"pfence_per_op"`
	StoresPerOp float64 `json:"stores_per_op"`
	// Commit-pipeline columns (J-PFA only): cache lines the flush set
	// coalesced away per op, and the share of Begins served by a warm
	// cached transaction.
	CoalescedPerOp float64 `json:"coalesced_per_op"`
	WarmTxPct      float64 `json:"warm_tx_pct"`
	// Stack embeds the full cross-layer counter deltas for the run (FA
	// slot/coalescing counters, heap allocator traffic, grid latencies).
	Stack *obs.StackSnapshot `json:"stack,omitempty"`
}

// Baseline is the serialized result file.
type Baseline struct {
	results.Header
	Records    int   `json:"ycsb_records"`
	Operations int   `json:"ycsb_operations"`
	Accounts   int   `json:"tpcb_accounts"`
	Transfers  int   `json:"tpcb_transfers"`
	Rows       []Row `json:"rows"`
}

func main() {
	records := flag.Int("records", 8_000, "YCSB record count")
	ops := flag.Int("ops", 30_000, "YCSB operations per pass")
	threads := flag.Int("threads", 1, "YCSB client goroutines (the J-PFA backend requires 1; see DESIGN.md)")
	accounts := flag.Int("accounts", 10_000, "TPC-B accounts")
	transfers := flag.Int("transfers", 40_000, "TPC-B transfers per pass")
	groupCommit := flag.Bool("group-commit", false, "run the main rows with shared commit barriers")
	durability := flag.String("durability", "sync", "main rows' commit durability: sync or async")
	pools := flag.Int("pools", 1, "shard the main YCSB rows across this many NVMM pools (1 = classic single-pool stack)")
	check := flag.String("check", "", "compare against this committed baseline JSON and fail on pwb/pfence-per-op regressions instead of recording")
	checkKops := flag.Bool("check-kops", false, "with -check, also gate throughput: rows whose committed counterpart ran on the same CPU count must keep their Kops/s within tolerance")
	checkAllocs := flag.Bool("check-allocs", false, "with -check, also gate the Go allocation rate: single-threaded rows must keep allocs/op within tolerance (the read-path column of DESIGN.md §14)")
	tol := flag.Float64("tol", 0.15, "relative per-op regression tolerance for -check (doubled for multi-threaded rows)")
	out := flag.String("out", "", "output JSON path (default results/BENCH_baseline.json; none in -check mode)")
	flag.Parse()
	if *out == "" && *check == "" {
		*out = "results/BENCH_baseline.json"
	}
	commit, err := bench.CommitModeName(*groupCommit, *durability)
	if err != nil {
		fatal(err)
	}

	b := Baseline{
		Header:     results.NewHeader(),
		Records:    *records,
		Operations: *ops,
		Accounts:   *accounts,
		Transfers:  *transfers,
	}

	for _, wl := range []string{"A", "B", "C", "F"} {
		for _, bk := range []bench.BackendKind{bench.JPFA, bench.JPDT, bench.PCJ} {
			n := *ops
			if bk == bench.PCJ {
				// PCJ pays an emulated JNI crossing per field access;
				// a shortened pass keeps `make bench` fast without
				// changing the per-op columns.
				n = *ops / 20
			}
			row, err := runYCSB(wl, bk, *records, n, *threads, commit, *pools)
			if err != nil {
				fatal(err)
			}
			b.Rows = append(b.Rows, row)
		}
	}
	// Lock-free head-to-head (DESIGN.md §16): locked vs lock-free J-PDT
	// on YCSB-A/B/C at 1 and 8 client goroutines. The lock-free rows are
	// the tentpole evidence: at 8 goroutines J-PDT-LF must beat J-PDT on
	// both Kops/s and pwb/op (the -check gate enforces the pwb side).
	for _, wl := range []string{"A", "B", "C"} {
		for _, th := range []int{1, 8} {
			for _, bk := range []bench.BackendKind{bench.JPDT, bench.JPDTLF} {
				if bk == bench.JPDT && th == *threads && commit == "" {
					continue // identical to a main-loop row above
				}
				row, err := runYCSB(wl, bk, *records, *ops, th, "", 1)
				if err != nil {
					fatal(err)
				}
				b.Rows = append(b.Rows, row)
			}
		}
	}
	// Group-commit sweep (DESIGN.md §15): YCSB-A over J-PFA at growing
	// client counts, per-Tx vs shared-barrier commit. The load phase is
	// always single-threaded (concurrent inserts hit shared map-slot
	// blocks); the A run phase is reads and per-key updates, which the
	// grid's stripe locks make safe to run concurrently.
	for _, th := range []int{1, 8, 64} {
		for _, cm := range []string{"per-tx", "group"} {
			row, err := runYCSB("A", bench.JPFA, *records, *ops, th, cm, 1)
			if err != nil {
				fatal(err)
			}
			b.Rows = append(b.Rows, row)
		}
	}
	// Heap-sharding head-to-head (DESIGN.md §17): YCSB-A at 8 client
	// goroutines, single-pool vs 4 pools, for the two mutex-bound J-NVM
	// backends. With 4 pools every pool owns its allocator, redo-log
	// manager and backend lock, so 8 clients stop colliding on one mutex;
	// check_bench.sh gates the expected throughput win.
	for _, bk := range []bench.BackendKind{bench.JPFA, bench.JPDT} {
		for _, np := range []int{1, 4} {
			if bk == bench.JPDT && np == 1 {
				continue // identical to the lock-free head-to-head row above
			}
			row, err := runYCSB("A", bk, *records, *ops, 8, "", np)
			if err != nil {
				fatal(err)
			}
			b.Rows = append(b.Rows, row)
		}
	}
	for _, clients := range []int{1, 8} {
		row, err := runTPCB(*accounts, *transfers, clients, commit)
		if err != nil {
			fatal(err)
		}
		b.Rows = append(b.Rows, row)
	}
	// The async watermark row: transfers are acknowledged by ticket and
	// the drain before the closing snapshot settles every epoch, so the
	// per-op columns include the full (amortized) fence bill.
	for _, cm := range []string{"group", "async"} {
		row, err := runTPCB(*accounts, *transfers, 8, cm)
		if err != nil {
			fatal(err)
		}
		b.Rows = append(b.Rows, row)
	}

	printRows(b.Rows)
	if *check != "" {
		if err := checkRows(*check, b.Rows, *tol, *checkKops, *checkAllocs); err != nil {
			fatal(err)
		}
		fmt.Printf("check: per-op flush columns within tolerance of %s\n", *check)
	}
	if *out != "" {
		if err := results.WriteJSON(*out, &b); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// rowKey identifies a row across baseline files.
func rowKey(r Row) string {
	np := r.Pools
	if np == 0 {
		np = 1
	}
	return fmt.Sprintf("%s|%s|%s|%d|%dp", r.Bench, r.Backend, r.Commit, r.Threads, np)
}

// checkRows is the perf gate: every row present in both runs must keep
// its pwb/op and pfence/op within tolerance of the committed baseline
// (throughput is too host-dependent to gate on; the primitive rates are
// deterministic modulo batching). Multi-threaded rows get double the
// tolerance — epoch and cohort sizes depend on goroutine interleaving.
// It also asserts the point of the group modes: at 8+ concurrent
// committers the shared-barrier YCSB-A row must beat per-Tx on fences.
func checkRows(path string, rows []Row, tol float64, checkKops, checkAllocs bool) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var old Baseline
	if err := json.Unmarshal(buf, &old); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	oldByKey := map[string]Row{}
	for _, r := range old.Rows {
		oldByKey[rowKey(r)] = r
	}
	var failures []string
	matched := 0
	exceeds := func(name string, now, was, t float64) {
		// The absolute slack keeps near-zero columns (read-only
		// workloads) from tripping on rounding.
		if now > was*(1+t)+0.05 {
			failures = append(failures, fmt.Sprintf("%s: %.2f -> %.2f (tol %.0f%%)", name, was, now, 100*t))
		}
	}
	for _, r := range rows {
		o, ok := oldByKey[rowKey(r)]
		if !ok {
			continue
		}
		matched++
		t := tol
		if r.Threads > 1 {
			t = 2 * tol
		}
		exceeds(rowKey(r)+" pwb/op", r.PWBPerOp, o.PWBPerOp, t)
		exceeds(rowKey(r)+" pfence/op", r.PFencePerOp, o.PFencePerOp, t)
		// The allocation rate is the read-path gate (the YCSB-C rows are
		// where zero-copy view reads show): single-threaded rows are
		// deterministic enough to compare absolutely; multi-threaded rows
		// inherit the doubled tolerance like the flush columns.
		if checkAllocs && o.AllocsPerOp > 0 {
			exceeds(rowKey(r)+" allocs/op", r.AllocsPerOp, o.AllocsPerOp, t)
		}
		// Throughput is only comparable between hosts of the same width;
		// -check-kops gates it where num_cpu matches the committed row.
		// Even then wall-clock is far noisier than the counter columns
		// (scheduler jitter moves single-threaded rows ~20% run to run on
		// a narrow host), so the throughput gate gets double the counter
		// tolerance: it exists to catch wholesale collapses, not drift.
		if kt := 2 * t; checkKops && r.NumCPU == o.NumCPU && o.KopsSec > 0 && r.KopsSec < o.KopsSec*(1-kt) {
			failures = append(failures, fmt.Sprintf("%s Kops/s: %.1f -> %.1f (tol %.0f%%)",
				rowKey(r), o.KopsSec, r.KopsSec, 100*kt))
		}
	}
	if matched == 0 {
		return fmt.Errorf("check: no rows of %s match this run (schema drift?)", path)
	}
	perTx := map[int]float64{}
	for _, r := range rows {
		if r.Bench == "ycsb-A" && r.Backend == string(bench.JPFA) && r.Commit == "per-tx" {
			perTx[r.Threads] = r.PFencePerOp
		}
	}
	for _, r := range rows {
		if r.Bench != "ycsb-A" || r.Backend != string(bench.JPFA) || r.Commit != "group" || r.Threads < 8 {
			continue
		}
		if base, ok := perTx[r.Threads]; ok && r.PFencePerOp >= base {
			failures = append(failures,
				fmt.Sprintf("group commit not combining: ycsb-A @%d threads %.2f pfence/op vs per-tx %.2f", r.Threads, r.PFencePerOp, base))
		}
	}
	// Lock-free head-to-head (DESIGN.md §16): wherever this run produced
	// both a locked and a lock-free J-PDT row for the same workload at 8+
	// goroutines, the lock-free row must keep its pwb/op advantage. Rows
	// for variants absent from the committed baseline are tolerated above
	// (they simply do not match); this check only fires when both sides
	// ran, so older baselines without lock-free rows still pass.
	lockedPWB := map[string]float64{}
	for _, r := range rows {
		if r.Backend == string(bench.JPDT) && r.Threads >= 8 {
			lockedPWB[fmt.Sprintf("%s|%d", r.Bench, r.Threads)] = r.PWBPerOp
		}
	}
	for _, r := range rows {
		if r.Backend != string(bench.JPDTLF) || r.Threads < 8 {
			continue
		}
		// Read-only mixes flush nothing on either side; the superiority
		// gate only bites where the locked baseline actually pays pwbs.
		if base, ok := lockedPWB[fmt.Sprintf("%s|%d", r.Bench, r.Threads)]; ok && base > 0 && r.PWBPerOp >= base {
			failures = append(failures,
				fmt.Sprintf("lock-free not cheaper: %s @%d threads %.2f pwb/op vs locked %.2f",
					r.Bench, r.Threads, r.PWBPerOp, base))
		}
	}
	// Heap-sharding head-to-head (DESIGN.md §17): wherever this run
	// produced both a single-pool and a 4+-pool row for the same workload,
	// backend, commit mode and client count, the sharded row must win on
	// throughput — the whole point of splitting the allocator, redo-log
	// manager and backend mutex per pool. In-run comparison, so host speed
	// cancels out. The win is physical parallelism, so on a host without
	// spare cores (GOMAXPROCS < 4) the gate instead bounds the routing
	// tax at 20%.
	singlePool := map[string]float64{}
	for _, r := range rows {
		if (r.Pools == 0 || r.Pools == 1) && r.Threads >= 8 {
			singlePool[fmt.Sprintf("%s|%s|%s|%d", r.Bench, r.Backend, r.Commit, r.Threads)] = r.KopsSec
		}
	}
	multicore := runtime.GOMAXPROCS(0) >= 4
	for _, r := range rows {
		if r.Pools < 4 || r.Threads < 8 {
			continue
		}
		base, ok := singlePool[fmt.Sprintf("%s|%s|%s|%d", r.Bench, r.Backend, r.Commit, r.Threads)]
		if !ok {
			continue
		}
		if multicore && r.KopsSec <= base {
			failures = append(failures,
				fmt.Sprintf("sharding did not pay: %s/%s @%d threads %.1f Kops/s with %d pools vs %.1f single-pool",
					r.Bench, r.Backend, r.Threads, r.KopsSec, r.Pools, base))
		}
		if !multicore && r.KopsSec < base*0.8 {
			failures = append(failures,
				fmt.Sprintf("routing tax too high: %s/%s @%d threads %.1f Kops/s with %d pools vs %.1f single-pool (>20%%)",
					r.Bench, r.Backend, r.Threads, r.KopsSec, r.Pools, base))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("check: %d regression(s) vs %s:\n  %s", len(failures), path, strings.Join(failures, "\n  "))
	}
	return nil
}

func runYCSB(wl string, bk bench.BackendKind, records, ops, threads int, commit string, pools int) (Row, error) {
	// Rows share one process; without reclaiming the previous rows' pools
	// and garbage first, GC pressure from earlier envs bleeds into this
	// row's numbers (alloc-heavy workloads lose up to 4x on one CPU).
	runtime.GC()
	debug.FreeOSMemory()
	cfg := ycsb.MustWorkload(wl)
	cfg.RecordCount = records
	cfg.Operations = ops
	cfg.Threads = threads
	cfg = cfg.Defaults()
	mode := commit
	if mode == "per-tx" {
		mode = "" // explicit sweep label for the default protocol
	}
	env, err := bench.NewEnv(bench.GridConfig{
		Backend: bk, Records: cfg.RecordCount * 2,
		FieldCount: cfg.FieldCount, FieldLen: cfg.FieldLen,
		Commit: mode,
		Pools:  pools,
	})
	if err != nil {
		return Row{}, err
	}
	defer env.Close()
	// Load single-threaded regardless of the run's client count: inserts
	// touch shared map-slot blocks, which only the run-phase op mix
	// avoids (the grid stripe locks cover per-key reads and updates).
	loadCfg := cfg
	loadCfg.Threads = 1
	if err := ycsb.Load(env.Grid, loadCfg); err != nil {
		return Row{}, fmt.Errorf("load %s/%s: %w", wl, bk, err)
	}
	before := env.Snapshot()
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	res, err := ycsb.Run(env.Grid, cfg)
	if err != nil {
		return Row{}, fmt.Errorf("run %s/%s: %w", wl, bk, err)
	}
	env.DrainDurable() // settle async epochs inside the interval
	runtime.ReadMemStats(&msAfter)
	stack := env.Snapshot().Sub(*before)
	row := Row{
		Bench:       "ycsb-" + wl,
		Commit:      commit,
		Backend:     string(bk),
		Threads:     threads,
		Pools:       pools,
		Ops:         int(res.Operations),
		NumCPU:      runtime.NumCPU(),
		KopsSec:     res.Throughput() / 1000,
		P99Us:       float64(res.Hist().Percentile(0.99).Nanoseconds()) / 1e3,
		PWBPerOp:    stack.PWBPerOp,
		PFencePerOp: stack.PFencePerOp,
		StoresPerOp: stack.StoresPerOp,
		Stack:       &stack,
	}
	if res.Operations > 0 {
		row.AllocsPerOp = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(res.Operations)
	}
	if stack.FA != nil && stack.Ops > 0 {
		row.CoalescedPerOp = float64(stack.FA.SavedLines) / float64(stack.Ops)
		if stack.FA.Begun > 0 {
			row.WarmTxPct = 100 * float64(stack.FA.TxReuse) / float64(stack.FA.Begun)
		}
	}
	return row, nil
}

func runTPCB(accounts, transfers, clients int, commit string) (Row, error) {
	pool := nvm.New(accounts*512+(32<<20), nvm.Options{FenceLatency: bench.DefaultFenceNs})
	bank, err := tpcb.OpenJNVMBank(pool, accounts, false)
	if err != nil {
		return Row{}, err
	}
	mode, err := bench.ParseCommitMode(commit)
	if err != nil {
		return Row{}, err
	}
	if err := bank.Manager().SetGroupCommit(fa.GroupOptions{Mode: mode}); err != nil {
		return Row{}, err
	}
	nvmBefore := pool.Obs().Snapshot()
	faBefore := bank.Manager().ObsSnapshot()
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	hists := make([]*ycsb.Histogram, clients)
	per := transfers / clients
	for c := 0; c < clients; c++ {
		wg.Add(1)
		hists[c] = &ycsb.Histogram{}
		go func(seed int64, h *ycsb.Histogram) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				t0 := time.Now()
				if err := bank.Transfer(from, to, 1); err != nil {
					errCh <- err
					return
				}
				h.Record(time.Since(t0))
			}
		}(int64(c)+1, hists[c])
	}
	wg.Wait()
	// Async mode: settle the queued epochs before closing the books so
	// every acknowledged transfer is durable and its fences are counted.
	bank.Manager().DrainDurable()
	close(errCh)
	for err := range errCh {
		return Row{}, err
	}
	elapsed := time.Since(start)
	delta := pool.Obs().Snapshot().Sub(nvmBefore)
	faDelta := bank.Manager().ObsSnapshot().Sub(faBefore)
	merged := &ycsb.Histogram{}
	for _, h := range hists {
		merged.Merge(h)
	}
	done := float64(per * clients)
	row := Row{
		Bench:       "tpcb",
		Commit:      commit,
		Backend:     "J-PFA",
		Threads:     clients,
		Ops:         per * clients,
		NumCPU:      runtime.NumCPU(),
		KopsSec:     done / elapsed.Seconds() / 1000,
		P99Us:       float64(merged.Percentile(0.99).Nanoseconds()) / 1e3,
		PWBPerOp:    float64(delta.PWBs) / done,
		PFencePerOp: float64(delta.Fences()) / done,
		StoresPerOp: float64(delta.Stores) / done,
	}
	row.CoalescedPerOp = float64(faDelta.SavedLines) / done
	if faDelta.Begun > 0 {
		row.WarmTxPct = 100 * float64(faDelta.TxReuse) / float64(faDelta.Begun)
	}
	return row, nil
}

func printRows(rows []Row) {
	fmt.Printf("%-10s%-8s%-8s%8s%7s%12s%12s%11s%10s%12s%12s%14s%10s\n",
		"bench", "backend", "commit", "threads", "pools", "Kops/s", "p99(us)", "allocs/op", "pwb/op", "pfence/op", "stores/op", "coalesced/op", "warm-tx%")
	for _, r := range rows {
		cm := r.Commit
		if cm == "" {
			cm = "-"
		}
		np := r.Pools
		if np == 0 {
			np = 1
		}
		fmt.Printf("%-10s%-8s%-8s%8d%7d%12.1f%12.1f%11.2f%10.2f%12.2f%12.1f%14.2f%10.1f\n",
			r.Bench, r.Backend, cm, r.Threads, np, r.KopsSec, r.P99Us, r.AllocsPerOp, r.PWBPerOp, r.PFencePerOp, r.StoresPerOp,
			r.CoalescedPerOp, r.WarmTxPct)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
