// Command baseline records the repository's performance baseline: short
// YCSB-A/B/C/F passes over the three J-NVM backends plus a
// multi-goroutine TPC-B transfer pass, each annotated with the
// persistence-primitive rates (pwb/op, pfence/op) and the Go allocation
// rate (allocs/op) from the shared obs layer. The output file
// (BENCH_baseline.json via `make bench`) anchors the perf trajectory of
// the optimization PRs: each pipeline change re-runs it and diffs the
// throughput, flush-rate and allocation columns against the committed
// baseline. num_cpu is recorded per row so cross-host runs stay
// comparable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/nvm"
	"repro/internal/obs"
	"repro/internal/tpcb"
	"repro/internal/ycsb"
)

// Row is one benchmark measurement.
type Row struct {
	Bench       string  `json:"bench"`
	Backend     string  `json:"backend"`
	Threads     int     `json:"threads"`
	Ops         int     `json:"ops"`
	NumCPU      int     `json:"num_cpu"`
	KopsSec     float64 `json:"kops_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	PWBPerOp    float64 `json:"pwb_per_op"`
	PFencePerOp float64 `json:"pfence_per_op"`
	StoresPerOp float64 `json:"stores_per_op"`
	// Commit-pipeline columns (J-PFA only): cache lines the flush set
	// coalesced away per op, and the share of Begins served by a warm
	// cached transaction.
	CoalescedPerOp float64 `json:"coalesced_per_op"`
	WarmTxPct      float64 `json:"warm_tx_pct"`
	// Stack embeds the full cross-layer counter deltas for the run (FA
	// slot/coalescing counters, heap allocator traffic, grid latencies).
	Stack *obs.StackSnapshot `json:"stack,omitempty"`
}

// Baseline is the serialized result file.
type Baseline struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Records     int    `json:"ycsb_records"`
	Operations  int    `json:"ycsb_operations"`
	Accounts    int    `json:"tpcb_accounts"`
	Transfers   int    `json:"tpcb_transfers"`
	Rows        []Row  `json:"rows"`
}

func main() {
	records := flag.Int("records", 8_000, "YCSB record count")
	ops := flag.Int("ops", 30_000, "YCSB operations per pass")
	threads := flag.Int("threads", 1, "YCSB client goroutines (the J-PFA backend requires 1; see DESIGN.md)")
	accounts := flag.Int("accounts", 10_000, "TPC-B accounts")
	transfers := flag.Int("transfers", 40_000, "TPC-B transfers per pass")
	out := flag.String("out", "BENCH_baseline.json", "output JSON path")
	flag.Parse()

	b := Baseline{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Records:     *records,
		Operations:  *ops,
		Accounts:    *accounts,
		Transfers:   *transfers,
	}

	for _, wl := range []string{"A", "B", "C", "F"} {
		for _, bk := range []bench.BackendKind{bench.JPFA, bench.JPDT, bench.PCJ} {
			n := *ops
			if bk == bench.PCJ {
				// PCJ pays an emulated JNI crossing per field access;
				// a shortened pass keeps `make bench` fast without
				// changing the per-op columns.
				n = *ops / 20
			}
			row, err := runYCSB(wl, bk, *records, n, *threads)
			if err != nil {
				fatal(err)
			}
			b.Rows = append(b.Rows, row)
		}
	}
	for _, clients := range []int{1, 8} {
		row, err := runTPCB(*accounts, *transfers, clients)
		if err != nil {
			fatal(err)
		}
		b.Rows = append(b.Rows, row)
	}

	printRows(b.Rows)
	buf, err := json.MarshalIndent(b, "", "  ")
	if err == nil {
		err = os.WriteFile(*out, buf, 0o644)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func runYCSB(wl string, bk bench.BackendKind, records, ops, threads int) (Row, error) {
	// Rows share one process; without reclaiming the previous rows' pools
	// and garbage first, GC pressure from earlier envs bleeds into this
	// row's numbers (alloc-heavy workloads lose up to 4x on one CPU).
	runtime.GC()
	debug.FreeOSMemory()
	cfg := ycsb.MustWorkload(wl)
	cfg.RecordCount = records
	cfg.Operations = ops
	cfg.Threads = threads
	cfg = cfg.Defaults()
	env, err := bench.NewEnv(bench.GridConfig{
		Backend: bk, Records: cfg.RecordCount * 2,
		FieldCount: cfg.FieldCount, FieldLen: cfg.FieldLen,
	})
	if err != nil {
		return Row{}, err
	}
	defer env.Close()
	if err := ycsb.Load(env.Grid, cfg); err != nil {
		return Row{}, fmt.Errorf("load %s/%s: %w", wl, bk, err)
	}
	before := env.Snapshot()
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	res, err := ycsb.Run(env.Grid, cfg)
	if err != nil {
		return Row{}, fmt.Errorf("run %s/%s: %w", wl, bk, err)
	}
	runtime.ReadMemStats(&msAfter)
	stack := env.Snapshot().Sub(*before)
	row := Row{
		Bench:       "ycsb-" + wl,
		Backend:     string(bk),
		Threads:     threads,
		Ops:         int(res.Operations),
		NumCPU:      runtime.NumCPU(),
		KopsSec:     res.Throughput() / 1000,
		PWBPerOp:    stack.PWBPerOp,
		PFencePerOp: stack.PFencePerOp,
		StoresPerOp: stack.StoresPerOp,
		Stack:       &stack,
	}
	if res.Operations > 0 {
		row.AllocsPerOp = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(res.Operations)
	}
	if stack.FA != nil && stack.Ops > 0 {
		row.CoalescedPerOp = float64(stack.FA.SavedLines) / float64(stack.Ops)
		if stack.FA.Begun > 0 {
			row.WarmTxPct = 100 * float64(stack.FA.TxReuse) / float64(stack.FA.Begun)
		}
	}
	return row, nil
}

func runTPCB(accounts, transfers, clients int) (Row, error) {
	pool := nvm.New(accounts*512+(32<<20), nvm.Options{FenceLatency: bench.DefaultFenceNs})
	bank, err := tpcb.OpenJNVMBank(pool, accounts, false)
	if err != nil {
		return Row{}, err
	}
	nvmBefore := pool.Obs().Snapshot()
	faBefore := bank.Manager().ObsSnapshot()
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	per := transfers / clients
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if err := bank.Transfer(from, to, 1); err != nil {
					errCh <- err
					return
				}
			}
		}(int64(c) + 1)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return Row{}, err
	}
	elapsed := time.Since(start)
	delta := pool.Obs().Snapshot().Sub(nvmBefore)
	fa := bank.Manager().ObsSnapshot().Sub(faBefore)
	done := float64(per * clients)
	row := Row{
		Bench:       "tpcb",
		Backend:     "J-PFA",
		Threads:     clients,
		Ops:         per * clients,
		NumCPU:      runtime.NumCPU(),
		KopsSec:     done / elapsed.Seconds() / 1000,
		PWBPerOp:    float64(delta.PWBs) / done,
		PFencePerOp: float64(delta.Fences()) / done,
		StoresPerOp: float64(delta.Stores) / done,
	}
	row.CoalescedPerOp = float64(fa.SavedLines) / done
	if fa.Begun > 0 {
		row.WarmTxPct = 100 * float64(fa.TxReuse) / float64(fa.Begun)
	}
	return row, nil
}

func printRows(rows []Row) {
	fmt.Printf("%-10s%-8s%9s%12s%11s%10s%12s%12s%14s%10s\n",
		"bench", "backend", "threads", "Kops/s", "allocs/op", "pwb/op", "pfence/op", "stores/op", "coalesced/op", "warm-tx%")
	for _, r := range rows {
		fmt.Printf("%-10s%-8s%9d%12.1f%11.2f%10.2f%12.2f%12.1f%14.2f%10.1f\n",
			r.Bench, r.Backend, r.Threads, r.KopsSec, r.AllocsPerOp, r.PWBPerOp, r.PFencePerOp, r.StoresPerOp,
			r.CoalescedPerOp, r.WarmTxPct)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
