// Benchmarks regenerating the paper's tables and figures at library scale.
// One Benchmark per exhibit; the cmd/ tools run the same experiments with
// bigger, paper-like parameters and print the full tables.
//
//	go test -bench=. -benchmem .
package jnvm_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/gcsim"
	"repro/internal/nvm"
	"repro/internal/tpcb"
	"repro/internal/ycsb"
)

const (
	benchRecords = 5_000
	benchFields  = 10
	benchFldLen  = 100
)

// newLoadedEnv builds a grid over the backend and loads the default YCSB
// dataset, outside the timer.
func newLoadedEnv(b *testing.B, bk bench.BackendKind, cacheEntries int) (*bench.Env, ycsb.Config) {
	b.Helper()
	env, err := bench.NewEnv(bench.GridConfig{
		Backend: bk, Records: benchRecords * 2,
		FieldCount: benchFields, FieldLen: benchFldLen,
		CacheEntries: cacheEntries,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := ycsb.MustWorkload("A")
	cfg.RecordCount = benchRecords
	cfg = cfg.Defaults()
	if err := ycsb.Load(env.Grid, cfg); err != nil {
		b.Fatal(err)
	}
	return env, cfg
}

func runYCSB(b *testing.B, env *bench.Env, cfg ycsb.Config) {
	b.Helper()
	cfg.Operations = b.N
	if cfg.Operations < cfg.Threads {
		cfg.Operations = cfg.Threads
	}
	b.ResetTimer()
	res, err := ycsb.Run(env.Grid, cfg)
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if res.Errors != 0 {
		b.Fatalf("%d op errors", res.Errors)
	}
	b.ReportMetric(res.Throughput()/1000, "Kops/s")
}

// BenchmarkFig7YCSB is Figure 7: YCSB workloads A-D,F across the four
// persistent backends.
func BenchmarkFig7YCSB(b *testing.B) {
	for _, w := range []string{"A", "B", "C", "D", "F"} {
		for _, bk := range []bench.BackendKind{bench.JPDT, bench.JPFA, bench.FS, bench.PCJ} {
			b.Run(fmt.Sprintf("%s/%s", w, bk), func(b *testing.B) {
				env, cfg := newLoadedEnv(b, bk, fig7Cache(bk))
				defer env.Close()
				wcfg := ycsb.MustWorkload(w)
				wcfg.RecordCount = cfg.RecordCount
				wcfg = wcfg.Defaults()
				runYCSB(b, env, wcfg)
			})
		}
	}
}

func fig7Cache(bk bench.BackendKind) int {
	if bk == bench.FS {
		return benchRecords / 10
	}
	return 0
}

// BenchmarkFig8Marshalling is Figure 8: YCSB-A over growing records on the
// marshalling backends.
func BenchmarkFig8Marshalling(b *testing.B) {
	for _, kb := range []int{1, 4, 10} {
		for _, bk := range []bench.BackendKind{bench.Volatile, bench.NullFS, bench.TmpFS, bench.FS} {
			b.Run(fmt.Sprintf("%dKB/%s", kb, bk), func(b *testing.B) {
				records := max(benchRecords/(2*kb), 100)
				env, err := bench.NewEnv(bench.GridConfig{
					Backend: bk, Records: records,
					FieldCount: 10, FieldLen: kb * 100,
					CacheEntries: records / 10,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer env.Close()
				cfg := ycsb.MustWorkload("A")
				cfg.RecordCount = records
				cfg.FieldLen = kb * 100
				cfg = cfg.Defaults()
				if err := ycsb.Load(env.Grid, cfg); err != nil {
					b.Fatal(err)
				}
				runYCSB(b, env, cfg)
			})
		}
	}
}

// BenchmarkFig9aCacheRatio is Figure 9a: YCSB-A latency vs cache ratio.
func BenchmarkFig9aCacheRatio(b *testing.B) {
	for _, ratio := range []int{0, 10, 100} {
		for _, bk := range []bench.BackendKind{bench.JPDT, bench.FS} {
			b.Run(fmt.Sprintf("cache=%d%%/%s", ratio, bk), func(b *testing.B) {
				env, cfg := newLoadedEnv(b, bk, benchRecords*ratio/100)
				defer env.Close()
				runYCSB(b, env, cfg)
			})
		}
	}
}

// BenchmarkFig9bRecords is Figure 9b: YCSB-A latency vs record count.
func BenchmarkFig9bRecords(b *testing.B) {
	for _, n := range []int{1_000, 10_000} {
		for _, bk := range []bench.BackendKind{bench.JPDT, bench.FS} {
			b.Run(fmt.Sprintf("records=%d/%s", n, bk), func(b *testing.B) {
				env, err := bench.NewEnv(bench.GridConfig{
					Backend: bk, Records: n * 2,
					FieldCount: benchFields, FieldLen: benchFldLen,
					CacheEntries: n / 10,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer env.Close()
				cfg := ycsb.MustWorkload("A")
				cfg.RecordCount = n
				cfg = cfg.Defaults()
				if err := ycsb.Load(env.Grid, cfg); err != nil {
					b.Fatal(err)
				}
				runYCSB(b, env, cfg)
			})
		}
	}
}

// BenchmarkFig9cFields is Figure 9c: YCSB-A latency vs field count at a
// constant dataset size.
func BenchmarkFig9cFields(b *testing.B) {
	const datasetBytes = 4 << 20
	for _, fc := range []int{10, 100} {
		for _, bk := range []bench.BackendKind{bench.JPDT, bench.FS} {
			b.Run(fmt.Sprintf("fields=%d/%s", fc, bk), func(b *testing.B) {
				records := max(datasetBytes/(fc*100), 50)
				env, err := bench.NewEnv(bench.GridConfig{
					Backend: bk, Records: records * 2,
					FieldCount: fc, FieldLen: 100,
					CacheEntries: records / 10,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer env.Close()
				cfg := ycsb.MustWorkload("A")
				cfg.RecordCount, cfg.FieldCount, cfg.FieldLen = records, fc, 100
				cfg = cfg.Defaults()
				if err := ycsb.Load(env.Grid, cfg); err != nil {
					b.Fatal(err)
				}
				runYCSB(b, env, cfg)
			})
		}
	}
}

// BenchmarkFig9dRecordSize is Figure 9d: YCSB-A latency vs record size at
// a constant dataset size.
func BenchmarkFig9dRecordSize(b *testing.B) {
	const datasetBytes = 8 << 20
	for _, kb := range []int{1, 10} {
		for _, bk := range []bench.BackendKind{bench.JPDT, bench.FS} {
			b.Run(fmt.Sprintf("record=%dKB/%s", kb, bk), func(b *testing.B) {
				records := max(datasetBytes/(kb<<10), 20)
				env, err := bench.NewEnv(bench.GridConfig{
					Backend: bk, Records: records * 2,
					FieldCount: 10, FieldLen: kb * 100,
					CacheEntries: records / 10,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer env.Close()
				cfg := ycsb.MustWorkload("A")
				cfg.RecordCount, cfg.FieldLen = records, kb*100
				cfg = cfg.Defaults()
				if err := ycsb.Load(env.Grid, cfg); err != nil {
					b.Fatal(err)
				}
				runYCSB(b, env, cfg)
			})
		}
	}
}

// BenchmarkFig10Threads is Figure 10: multi-threaded YCSB-A and YCSB-C.
func BenchmarkFig10Threads(b *testing.B) {
	for _, w := range []string{"A", "C"} {
		for _, th := range []int{1, 4} {
			for _, bk := range []bench.BackendKind{bench.JPDT, bench.FS, bench.Volatile} {
				b.Run(fmt.Sprintf("%s/threads=%d/%s", w, th, bk), func(b *testing.B) {
					env, _ := newLoadedEnv(b, bk, fig7Cache(bk))
					defer env.Close()
					cfg := ycsb.MustWorkload(w)
					cfg.RecordCount = benchRecords
					cfg.Threads = th
					cfg = cfg.Defaults()
					runYCSB(b, env, cfg)
				})
			}
		}
	}
}

// BenchmarkFig11Recovery is Figure 11: the restart path (redo-log
// recovery + reachability GC + mirror rebuild) per system flavor, over a
// populated bank.
func BenchmarkFig11Recovery(b *testing.B) {
	const accounts = 5_000
	for _, mode := range []struct {
		name string
		nogc bool
	}{{"J-PFA", false}, {"J-PFA-nogc", true}} {
		b.Run(mode.name, func(b *testing.B) {
			pool := nvm.New(accounts*512+(16<<20), nvm.Options{})
			bank, err := tpcb.OpenJNVMBank(pool, accounts, mode.nogc)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 500; i++ {
				if err := bank.Transfer(i%accounts, (i*7+1)%accounts, 1); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tpcb.OpenJNVMBank(pool, accounts, mode.nogc); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(accounts)/float64(b.Elapsed().Nanoseconds()/int64(b.N))*1e9, "accounts/s")
		})
	}
}

// BenchmarkFig12DataTypes is Figure 12: per-op cost of YCSB-A directly on
// the data types, persistent vs volatile.
func BenchmarkFig12DataTypes(b *testing.B) {
	rows, err := bench.Fig12(2_000, 1, 100) // warm a tiny instance to reuse code paths
	_ = rows
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range []struct {
		structure string
		impl      string
	}{
		{"HashMap", "Volatile"}, {"HashMap", "J-PDT"},
		{"TreeMap", "Volatile"}, {"TreeMap", "J-PDT"},
		{"SkipListMap", "Volatile"}, {"SkipListMap", "J-PDT"},
	} {
		b.Run(v.structure+"/"+v.impl, func(b *testing.B) {
			rows, err := bench.Fig12(2_000, b.N, 100)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range rows {
				if r.Structure == v.structure && r.Impl == v.impl {
					b.ReportMetric(float64(r.Completion.Nanoseconds())/float64(b.N), "ns/op-measured")
				}
			}
		})
	}
}

// BenchmarkFig1GCCacheRatio is Figure 1: the managed-cache GC cost at
// growing cache ratios.
func BenchmarkFig1GCCacheRatio(b *testing.B) {
	for _, ratio := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("cache=%d%%", ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := bench.Fig1(8_000, 16_000, []int{ratio}, 2)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rows[0].GCShare*100, "gc%")
				b.ReportMetric(float64(rows[0].P9999.Nanoseconds()), "p9999-ns")
			}
		})
	}
}

// BenchmarkFig2GoPmemGC is Figure 2: the go-pmem-style GC cost as the
// persistent dataset grows.
func BenchmarkFig2GoPmemGC(b *testing.B) {
	for _, mb := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("dataset=%dMB", mb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := bench.Fig2([]int{mb}, 20_000, 2)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rows[0].GCShare*100, "gc%")
				b.ReportMetric(rows[0].Completion.Seconds()*1000, "completion-ms")
			}
		})
	}
}

// BenchmarkTable3BlockAccess is Table 3: 256 B block bandwidth through
// the framework vs a native loop.
func BenchmarkTable3BlockAccess(b *testing.B) {
	for i := 0; i < 1; i++ { // the sub-benchmarks run the full grid once per iteration
	}
	patterns := []struct {
		path string
		seq  bool
		wr   bool
	}{
		{"J-NVM", true, false}, {"native", true, false},
		{"J-NVM", true, true}, {"native", true, true},
		{"J-NVM", false, false}, {"native", false, false},
		{"J-NVM", false, true}, {"native", false, true},
	}
	for _, p := range patterns {
		name := fmt.Sprintf("%s/seq=%v/write=%v", p.path, p.seq, p.wr)
		b.Run(name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				rows, err := bench.Table3(16)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.Path == p.path && r.Sequential == p.seq && r.Write == p.wr {
						total += r.GBps
					}
				}
			}
			b.ReportMetric(total/float64(b.N), "GB/s")
		})
	}
}

// BenchmarkRecoveryGCThroughput measures the raw recovery traversal rate
// (supporting §5.3.3's restart-delay analysis).
func BenchmarkRecoveryGCThroughput(b *testing.B) {
	pool := nvm.New(64<<20, nvm.Options{})
	bank, err := tpcb.OpenJNVMBank(pool, 20_000, false)
	if err != nil {
		b.Fatal(err)
	}
	_ = bank
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bk, err := tpcb.OpenJNVMBank(pool, 20_000, false)
		if err != nil {
			b.Fatal(err)
		}
		if bk.Heap().RecoveryStats.LiveObjects == 0 {
			b.Fatal("no recovery work")
		}
	}
}

// BenchmarkGCSimMark measures the tri-color mark rate of the gcsim
// collector (the per-object cost behind Figures 1-2).
func BenchmarkGCSimMark(b *testing.B) {
	h := gcsim.New(1 << 40)
	r := gcsim.NewRedisLike(h, 4096)
	for i := 0; i < 50_000; i++ {
		r.Set(fmt.Sprintf("k%d", i), make([]byte, 64))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Collect()
	}
	b.StopTimer()
	st := h.Stats()
	b.ReportMetric(float64(st.MarkedObjects)/b.Elapsed().Seconds()/1e6, "Mobj/s")
	_ = time.Now
}

// BenchmarkAblationValidationBatching isolates §3.2.3: publishing objects
// under one fence per batch instead of one fence per object.
func BenchmarkAblationValidationBatching(b *testing.B) {
	for _, batch := range []int{1, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := bench.AblationValidation(5_000, 120)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.Variant == fmt.Sprintf("batch=%d", batch) {
						b.ReportMetric(r.NsPerOp, "ns/publish")
					}
				}
			}
		})
	}
}

// BenchmarkAblationSmallPool isolates §4.4: pooled small immutables vs
// one block per object.
func BenchmarkAblationSmallPool(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationSmallPool(20_000, 100)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Aux, r.Variant+"-bytes/obj")
		}
	}
}

// BenchmarkAblationLogSlots isolates §4.2's per-thread logs: concurrent
// failure-atomic throughput vs available log slots.
func BenchmarkAblationLogSlots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationLogSlots(500, 8)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Aux, r.Variant+"-Kops/s")
		}
	}
}

// BenchmarkAblationFenceCost sweeps the modeled NVMM fence latency — how
// the J-PDT update cost moves across persistent-memory generations.
func BenchmarkAblationFenceCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationFenceCost(5_000)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.NsPerOp, r.Variant)
		}
	}
}
