// Package jnvm is a Go implementation of J-NVM (Lefort et al., SOSP '21):
// off-heap persistent objects over emulated or file-backed NVMM.
//
// A persistent object is decoupled into a data structure that lives in the
// NVMM pool, outside the reach of Go's garbage collector, and a volatile
// proxy — an ordinary Go value — that mediates every access. Objects are
// live by reachability from a named root map, collected only at recovery
// time; deletion is explicit. Durability is attached to types (the
// class-centric model): only registered persistent classes can be stored.
//
// Three programming levels are offered, mirroring the paper:
//
//   - High level: failure-atomic blocks via DB.RunFA — everything inside
//     the block happens entirely or not at all across crashes.
//   - J-PDT: ready-made persistent data types (strings, arrays, maps,
//     sets) that are crash-consistent without failure-atomic blocks.
//   - Low level: explicit PWB/PFence/Validate for hand-tuned persistence
//     (see Object's methods and the examples).
//
// Quick start:
//
//	db, _ := jnvm.Open(jnvm.Options{Path: "/tmp/heap.pmem", Size: 64 << 20})
//	defer db.Close()
//	m, _ := jnvm.NewMap(db, jnvm.MirrorHash)
//	db.Root().Put("table", m)
package jnvm

import (
	"repro/internal/core"
	"repro/internal/fa"
	"repro/internal/heap"
	"repro/internal/nvm"
	"repro/internal/pdt"
	"repro/internal/store"
)

// Re-exported core types: the programming model of §2/§3.
type (
	// Ref is a persistent reference (0 is the persistent null).
	Ref = core.Ref
	// PObject marks persistent proxies (class-centric durability).
	PObject = core.PObject
	// Object is the proxy core with the field accessors of Figure 4.
	Object = core.Object
	// Class describes a persistent type to the runtime.
	Class = core.Class
	// RootMap is the persistent map of named roots (JNVM.root).
	RootMap = core.RootMap
	// Tx is a failure-atomic block (§4.2).
	Tx = fa.Tx
	// Pool is the underlying emulated NVMM region.
	Pool = nvm.Pool

	// PString is the persistent immutable string of J-PDT.
	PString = pdt.PString
	// PBytes is the persistent immutable byte array of J-PDT.
	PBytes = pdt.PBytes
	// PLongArray is a fixed persistent int64 array.
	PLongArray = pdt.PLongArray
	// PRefArray is a fixed persistent reference array.
	PRefArray = pdt.PRefArray
	// PExtArray is the extensible persistent array (§4.3.1).
	PExtArray = pdt.PExtArray
	// Map is the persistent map of §4.3.2.
	Map = pdt.Map
	// Set is the persistent set (a map binding keys to themselves).
	Set = pdt.Set
	// MirrorKind selects a map's volatile mirror structure.
	MirrorKind = pdt.MirrorKind
	// CacheMode selects a map's proxy-caching variant.
	CacheMode = pdt.CacheMode

	// Grid is the embedded data-grid substrate of the evaluation.
	Grid = store.Grid
	// Record is the grid's volatile record representation.
	Record = store.Record
	// Field is one named record field.
	Field = store.Field
)

// Mirror kinds for NewMap.
const (
	MirrorHash = pdt.MirrorHash
	MirrorTree = pdt.MirrorTree
	MirrorSkip = pdt.MirrorSkip
)

// Proxy cache modes (§4.3.2 base / cached / eager, plus the bounded
// hottest-proxies extension configured via Map.SetCacheHot).
const (
	CacheNone     = pdt.CacheNone
	CacheOnDemand = pdt.CacheOnDemand
	CacheEager    = pdt.CacheEager
	CacheHot      = pdt.CacheHot
)

// Options configures Open.
type Options struct {
	// Path backs the pool with a file (mmap), the analogue of the
	// paper's /mnt/pmem region. Empty means an in-memory pool.
	Path string
	// Size is the pool size in bytes (defaults to 64 MiB).
	Size int
	// Tracked enables the crash-injectable cache-line model (in-memory
	// pools only); see nvm.Pool.
	Tracked bool
	// FenceLatencyNs / FlushLatencyNs configure the NVMM latency model.
	FenceLatencyNs int
	FlushLatencyNs int
	// Classes are the application's persistent classes (J-PDT, the store
	// record class and the root classes register automatically).
	Classes []*Class
	// SkipGraphGC selects header-scan recovery (J-PFA-nogc, Figure 11).
	SkipGraphGC bool
	// RecoverParallelism sets the recovery worker count: 0 means
	// GOMAXPROCS, 1 the paper's serial §4.1.3 procedure.
	RecoverParallelism int
	// LogSlots / LogSlotSize size the failure-atomic redo-log area.
	LogSlots    int
	LogSlotSize int
}

// DB is an opened J-NVM heap plus its failure-atomic block manager.
type DB struct {
	*core.Heap
	fam  *fa.Manager
	pool *nvm.Pool
}

// Open creates or reopens a J-NVM heap. Reopening runs the recovery
// procedure of §4.1.3 (redo-log replay, reachability GC).
func Open(opts Options) (*DB, error) {
	if opts.Size == 0 {
		opts.Size = 64 << 20
	}
	nvmOpts := nvm.Options{
		Tracked:      opts.Tracked,
		FenceLatency: opts.FenceLatencyNs,
		FlushLatency: opts.FlushLatencyNs,
	}
	var pool *nvm.Pool
	var err error
	if opts.Path != "" {
		pool, err = nvm.OpenFile(opts.Path, opts.Size, nvmOpts)
		if err != nil {
			return nil, err
		}
	} else {
		pool = nvm.New(opts.Size, nvmOpts)
	}
	return OpenPool(pool, opts)
}

// OpenPool opens a heap over an existing pool (crash images, tests).
func OpenPool(pool *nvm.Pool, opts Options) (*DB, error) {
	mgr := fa.NewManager()
	classes := append(pdt.Classes(), store.Classes()...)
	classes = append(classes, opts.Classes...)
	h, err := core.Open(pool, core.Config{
		HeapOptions: heap.Options{LogSlots: opts.LogSlots, LogSlotSize: opts.LogSlotSize},
		Classes:     classes,
		LogHandler:  mgr,
		SkipGraphGC: opts.SkipGraphGC,
		Recover:     core.RecoverOptions{Parallelism: opts.RecoverParallelism},
	})
	if err != nil {
		pool.Close()
		return nil, err
	}
	return &DB{Heap: h, fam: mgr, pool: pool}, nil
}

// Close releases the pool (durable data stays in the backing file, if
// any). The heap must not be used afterwards.
func (db *DB) Close() error {
	db.PSync()
	return db.pool.Close()
}

// RunFA executes fn as a failure-atomic block: it takes effect entirely
// or not at all, across errors, panics and power failures (§4.2).
func (db *DB) RunFA(fn func(*Tx) error) error { return db.fam.Run(fn) }

// FAManager exposes the failure-atomic block manager.
func (db *DB) FAManager() *fa.Manager { return db.fam }

// NVMPool exposes the underlying pool (crash testing, statistics).
func (db *DB) NVMPool() *Pool { return db.pool }

// ---- J-PDT constructors over the DB ----

// NewString allocates a persistent string (see pdt.NewString for the
// publication discipline).
func NewString(db *DB, s string) (*PString, error) { return pdt.NewString(db.Heap, s) }

// NewStringTx allocates a persistent string inside a failure-atomic block.
func NewStringTx(tx *Tx, s string) (*PString, error) { return pdt.NewStringTx(tx, s) }

// NewBytes allocates a persistent byte array.
func NewBytes(db *DB, b []byte) (*PBytes, error) { return pdt.NewBytes(db.Heap, b) }

// NewBytesTx allocates a persistent byte array inside a block.
func NewBytesTx(tx *Tx, b []byte) (*PBytes, error) { return pdt.NewBytesTx(tx, b) }

// NewLongArray allocates a fixed persistent int64 array.
func NewLongArray(db *DB, n int) (*PLongArray, error) { return pdt.NewLongArray(db.Heap, n) }

// NewRefArray allocates a fixed persistent reference array.
func NewRefArray(db *DB, n int) (*PRefArray, error) { return pdt.NewRefArray(db.Heap, n) }

// NewExtArray allocates an extensible persistent array.
func NewExtArray(db *DB) (*PExtArray, error) { return pdt.NewExtArray(db.Heap) }

// NewMap allocates a persistent map with the chosen volatile mirror.
func NewMap(db *DB, kind MirrorKind) (*Map, error) { return pdt.NewMap(db.Heap, kind) }

// NewSet allocates a persistent set.
func NewSet(db *DB, kind MirrorKind) (*Set, error) { return pdt.NewSet(db.Heap, kind) }

// AsSet views a resurrected persistent map as a set.
func AsSet(m *Map) *Set { return pdt.AsSet(m) }

// NewTrackedPool creates an in-memory pool with the crash-injectable
// cache-line model, for use with OpenPool in crash tests.
func NewTrackedPool(size int) *Pool {
	return nvm.New(size, nvm.Options{Tracked: true})
}

// CrashImageStrict materializes what survives a power failure right now
// under the strict policy (only explicitly flushed-and-fenced data).
func CrashImageStrict(p *Pool) *Pool {
	return p.CrashImage(nvm.CrashStrict, nil)
}
